//! Memory-system configuration (Table 2 of the paper).

use hfs_check::ProtocolKind;
use hfs_sim::ConfigError;

use crate::cache::CacheGeometry;

/// Snoop coherence protocol run by the private L2s.
///
/// The paper's baseline is write-invalidate MSI; the other two points
/// probe how much of the EXISTING↔SYNCOPTI gap is an artifact of the
/// protocol rather than of software queueing itself:
///
/// * `Mesi` adds the Exclusive state: a read miss that no other L2 can
///   answer fills Exclusive, and the first store to an Exclusive line
///   upgrades to Modified silently, with no bus transaction.
/// * `Dragon` is the classic 4-state update protocol (SC/SM/EC/EM):
///   stores to shared lines broadcast a bus-update that patches every
///   sharer's copy in place instead of invalidating it, so
///   producer→consumer lines never ping-pong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protocol {
    /// 3-state write-invalidate (the paper's baseline).
    #[default]
    Msi,
    /// 4-state write-invalidate with exclusive-clean fills.
    Mesi,
    /// 4-state write-update (SC/SM/EC/EM).
    Dragon,
}

impl Protocol {
    /// Every supported protocol, in sweep order.
    pub const ALL: [Protocol; 3] = [Protocol::Msi, Protocol::Mesi, Protocol::Dragon];

    /// Lower-case config/spec label (`msi`, `mesi`, `dragon`).
    pub fn label(self) -> &'static str {
        match self {
            Protocol::Msi => "msi",
            Protocol::Mesi => "mesi",
            Protocol::Dragon => "dragon",
        }
    }

    /// Parses a case-insensitive label.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "msi" => Some(Protocol::Msi),
            "mesi" => Some(Protocol::Mesi),
            "dragon" => Some(Protocol::Dragon),
            _ => None,
        }
    }

    /// True for update-based protocols (no invalidations ever).
    pub fn update_based(self) -> bool {
        matches!(self, Protocol::Dragon)
    }

    /// The checker-side protocol id selecting the invariant table.
    pub fn kind(self) -> ProtocolKind {
        match self {
            Protocol::Msi => ProtocolKind::Msi,
            Protocol::Mesi => ProtocolKind::Mesi,
            Protocol::Dragon => ProtocolKind::Dragon,
        }
    }
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Shared-bus parameters.
///
/// The baseline machine uses a "16-byte, 1-cycle, 3-stage pipelined,
/// split-transaction bus with round robin arbitration" (Table 2). The
/// sensitivity studies of §4.5 raise the bus clock divider to 4
/// (Figure 10) and the width to 128 bytes (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusConfig {
    /// Data-path width in bytes per bus cycle.
    pub width_bytes: u64,
    /// CPU cycles per bus cycle (1 = bus runs at core frequency).
    pub clock_divider: u64,
    /// Address-phase pipeline depth in bus cycles.
    pub pipeline_stages: u64,
    /// §4.2: make the memory-network arbiter favor application memory
    /// requests over inter-thread operand (streaming) traffic, decided
    /// by the memory area being accessed. Pipelined streaming tolerates
    /// the extra arbitration delay; application requests do not.
    pub favor_app_traffic: bool,
}

impl BusConfig {
    /// The Table 2 baseline: 16-byte wide, core-clocked, 3-stage.
    pub fn baseline() -> Self {
        BusConfig {
            width_bytes: 16,
            clock_divider: 1,
            pipeline_stages: 3,
            favor_app_traffic: false,
        }
    }

    /// Bus cycles needed to move `bytes` across the data path.
    pub fn data_cycles(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.width_bytes).max(1)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Rejects zero widths, dividers, or pipeline depths.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.width_bytes == 0 {
            return Err(ConfigError::new("bus width must be non-zero"));
        }
        if self.clock_divider == 0 {
            return Err(ConfigError::new("bus clock divider must be non-zero"));
        }
        if self.pipeline_stages == 0 {
            return Err(ConfigError::new("bus pipeline depth must be non-zero"));
        }
        Ok(())
    }
}

impl Default for BusConfig {
    fn default() -> Self {
        BusConfig::baseline()
    }
}

/// Full memory-hierarchy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of cores (1 for single-threaded runs, 2 for the CMP).
    pub cores: u8,
    /// L1 data cache geometry (16 KB, 4-way, 64 B lines).
    pub l1d: CacheGeometry,
    /// L1D access latency in cycles.
    pub l1_latency: u64,
    /// Private L2 geometry (256 KB, 8-way, 128 B lines).
    pub l2: CacheGeometry,
    /// Minimum L2 access latency; actual latency is `min`, `min+2` or
    /// `min+4` chosen by address bank bits ("5,7,9 cycles" in Table 2).
    pub l2_latency_min: u64,
    /// L2 controller ports: accesses that may begin per CPU cycle.
    pub l2_ports: u32,
    /// OzQ (ordered transaction queue / MSHR) entries; Table 2's
    /// "Maximum Outstanding Loads - 16".
    pub ozq_entries: u32,
    /// Cycles between recirculation attempts for an op that failed to get
    /// an L2 port or is waiting for ownership (EXISTING/MEMOPTI behavior).
    pub recirc_interval: u64,
    /// Shared L3 geometry (1.5 MB, 12-way, 128 B lines).
    pub l3: CacheGeometry,
    /// L3 access latency in cycles ("> 12 cycles").
    pub l3_latency: u64,
    /// Main-memory latency in cycles (141).
    pub dram_latency: u64,
    /// Shared-bus parameters.
    pub bus: BusConfig,
    /// Snoop coherence protocol (MSI baseline, MESI, or Dragon update).
    pub protocol: Protocol,
}

impl MemConfig {
    /// The Table 2 baseline dual-core Itanium 2 CMP memory system.
    pub fn itanium2_cmp() -> Self {
        MemConfig {
            cores: 2,
            l1d: CacheGeometry::new(16 * 1024, 4, 64),
            l1_latency: 1,
            l2: CacheGeometry::new(256 * 1024, 8, 128),
            l2_latency_min: 5,
            l2_ports: 4,
            ozq_entries: 16,
            recirc_interval: 4,
            l3: CacheGeometry::new(1536 * 1024, 12, 128),
            l3_latency: 13,
            dram_latency: 141,
            bus: BusConfig::baseline(),
            protocol: Protocol::Msi,
        }
    }

    /// Same machine with a single core, for the paper's single-threaded
    /// baseline (Figure 9).
    pub fn itanium2_single() -> Self {
        MemConfig {
            cores: 1,
            ..Self::itanium2_cmp()
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first inconsistency found (zero cores, invalid cache
    /// geometry, L2 line smaller than L1 line, etc.).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("at least one core is required"));
        }
        if self.cores > 8 {
            return Err(ConfigError::new(
                "the shared-bus model supports at most 8 cores",
            ));
        }
        self.l1d.validate()?;
        self.l2.validate()?;
        self.l3.validate()?;
        if self.l2.line_bytes < self.l1d.line_bytes {
            return Err(ConfigError::new(
                "L2 line size must be at least the L1 line size",
            ));
        }
        if self.l3.line_bytes != self.l2.line_bytes {
            return Err(ConfigError::new("L3 and L2 line sizes must match"));
        }
        if self.l2_ports == 0 {
            return Err(ConfigError::new("L2 must have at least one port"));
        }
        if self.ozq_entries == 0 {
            return Err(ConfigError::new("OzQ must have at least one entry"));
        }
        if self.recirc_interval == 0 {
            return Err(ConfigError::new("recirculation interval must be non-zero"));
        }
        self.bus.validate()
    }

    /// The L2 bank latency for `line`: 5, 7 or 9 cycles selected by the
    /// low line-address bits, modeling the Itanium 2's banked L2.
    pub fn l2_latency_for(&self, line: u64) -> u64 {
        self.l2_latency_min + 2 * (line % 3)
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::itanium2_cmp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_validates() {
        assert!(MemConfig::itanium2_cmp().validate().is_ok());
        assert!(MemConfig::itanium2_single().validate().is_ok());
    }

    #[test]
    fn bus_data_cycles() {
        let b = BusConfig::baseline();
        assert_eq!(b.data_cycles(128), 8);
        assert_eq!(b.data_cycles(16), 1);
        assert_eq!(b.data_cycles(1), 1);
        let wide = BusConfig {
            width_bytes: 128,
            ..b
        };
        assert_eq!(wide.data_cycles(128), 1);
    }

    #[test]
    fn bus_rejects_zeroes() {
        let mut b = BusConfig::baseline();
        b.width_bytes = 0;
        assert!(b.validate().is_err());
        let mut b = BusConfig::baseline();
        b.clock_divider = 0;
        assert!(b.validate().is_err());
        let mut b = BusConfig::baseline();
        b.pipeline_stages = 0;
        assert!(b.validate().is_err());
    }

    #[test]
    fn config_rejects_bad_shapes() {
        let mut c = MemConfig::itanium2_cmp();
        c.cores = 0;
        assert!(c.validate().is_err());

        let mut c = MemConfig::itanium2_cmp();
        c.l2 = CacheGeometry::new(256 * 1024, 8, 32); // smaller than L1 line
        assert!(c.validate().is_err());

        let mut c = MemConfig::itanium2_cmp();
        c.l3 = CacheGeometry::new(1536 * 1024, 12, 64); // mismatched lines
        assert!(c.validate().is_err());

        let mut c = MemConfig::itanium2_cmp();
        c.ozq_entries = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn protocol_labels_round_trip() {
        for p in Protocol::ALL {
            assert_eq!(Protocol::parse(p.label()), Some(p));
            assert_eq!(Protocol::parse(&p.label().to_uppercase()), Some(p));
        }
        assert_eq!(Protocol::parse("mosi"), None);
        assert_eq!(Protocol::default(), Protocol::Msi);
        assert!(Protocol::Dragon.update_based());
        assert!(!Protocol::Mesi.update_based());
    }

    #[test]
    fn l2_bank_latencies_cover_5_7_9() {
        let c = MemConfig::itanium2_cmp();
        let lats: std::collections::HashSet<u64> = (0..6).map(|l| c.l2_latency_for(l)).collect();
        assert_eq!(lats, [5, 7, 9].into_iter().collect());
    }
}

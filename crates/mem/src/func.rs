//! Sparse functional memory backing the timing model with values.

use std::collections::HashMap;

use hfs_isa::Addr;

/// A sparse, word-granular (8-byte) functional memory.
///
/// Uninitialized words read as zero. Addresses are rounded down to their
/// containing 8-byte word, matching the simulator's 64-bit data model.
///
/// # Example
///
/// ```
/// use hfs_mem::FuncMem;
/// use hfs_isa::Addr;
///
/// let mut m = FuncMem::new();
/// assert_eq!(m.read(Addr::new(0x100)), 0);
/// m.write(Addr::new(0x100), 7);
/// assert_eq!(m.read(Addr::new(0x104)), 7); // same word
/// ```
#[derive(Debug, Clone, Default)]
pub struct FuncMem {
    words: HashMap<u64, u64>,
}

impl FuncMem {
    /// Creates an empty (all-zero) memory.
    pub fn new() -> Self {
        FuncMem::default()
    }

    fn word(addr: Addr) -> u64 {
        addr.as_u64() & !7
    }

    /// Reads the 64-bit word containing `addr`.
    pub fn read(&self, addr: Addr) -> u64 {
        self.words.get(&Self::word(addr)).copied().unwrap_or(0)
    }

    /// Writes the 64-bit word containing `addr`.
    pub fn write(&mut self, addr: Addr, value: u64) {
        self.words.insert(Self::word(addr), value);
    }

    /// Number of words ever written.
    pub fn footprint_words(&self) -> usize {
        self.words.len()
    }

    /// Iterates over every `(word address, value)` pair ever written, in
    /// arbitrary order — used to seed the machine checker's golden copy.
    pub fn iter_words(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.words.iter().map(|(&a, &v)| (a, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zero() {
        let m = FuncMem::new();
        assert_eq!(m.read(Addr::new(0)), 0);
        assert_eq!(m.read(Addr::new(0xdead_beef)), 0);
    }

    #[test]
    fn write_then_read() {
        let mut m = FuncMem::new();
        m.write(Addr::new(64), 99);
        assert_eq!(m.read(Addr::new(64)), 99);
        assert_eq!(m.footprint_words(), 1);
    }

    #[test]
    fn subword_addresses_alias() {
        let mut m = FuncMem::new();
        m.write(Addr::new(0x1003), 5);
        assert_eq!(m.read(Addr::new(0x1000)), 5);
        assert_eq!(m.read(Addr::new(0x1007)), 5);
        assert_eq!(m.read(Addr::new(0x1008)), 0);
    }

    #[test]
    fn overwrite_replaces() {
        let mut m = FuncMem::new();
        m.write(Addr::new(8), 1);
        m.write(Addr::new(8), 2);
        assert_eq!(m.read(Addr::new(8)), 2);
        assert_eq!(m.footprint_words(), 1);
    }
}

//! The shared L3 cache and its memory controller.

use hfs_isa::CoreId;
use hfs_sim::stats::Counter;
use hfs_sim::{ConfigError, Cycle, TimedQueue};

use crate::cache::{CacheArray, CacheGeometry, LineState};

/// A request the L3 is servicing on behalf of a core's L2 miss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct L3Req {
    /// Line number requested.
    pub line: u64,
    /// Requesting core.
    pub requester: CoreId,
    /// Coherence state the fill will install in at the requester,
    /// decided by the system at request time (Modified for RdX,
    /// Exclusive for MESI/Dragon fills with no other holder, Shared
    /// otherwise). Passed through untouched.
    pub fill: LineState,
}

/// A serviced request ready to be put on the bus data channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct L3Ready {
    pub req: L3Req,
    /// Whether main memory had to be accessed.
    pub from_dram: bool,
}

/// The shared L3 plus a fixed-latency DRAM behind it.
///
/// Requests pass through the L3 tag array after `l3_latency` cycles; on a
/// miss they continue to DRAM for `dram_latency` more cycles, installing
/// the line in the L3 on return. Writebacks from L2s install dirty lines.
/// Dirty L3 victims are absorbed by DRAM without additional modeled
/// latency (the request that caused the eviction has already paid the
/// DRAM round trip).
#[derive(Debug)]
pub(crate) struct L3 {
    array: CacheArray,
    l3_latency: u64,
    dram_latency: u64,
    lookups: TimedQueue<L3Req>,
    dram: TimedQueue<L3Req>,
    ready: Vec<L3Ready>,
    dram_accesses: Counter,
    dirty_evictions: u64,
}

impl L3 {
    pub(crate) fn new(
        geom: CacheGeometry,
        l3_latency: u64,
        dram_latency: u64,
    ) -> Result<Self, ConfigError> {
        Ok(L3 {
            array: CacheArray::new(geom)?,
            l3_latency,
            dram_latency,
            lookups: TimedQueue::new(),
            dram: TimedQueue::new(),
            ready: Vec::new(),
            dram_accesses: Counter::new("mem.dram_accesses"),
            dirty_evictions: 0,
        })
    }

    /// Accepts a demand request from the bus snoop path.
    pub(crate) fn request(&mut self, req: L3Req, now: Cycle) {
        self.lookups.push(now + self.l3_latency, req);
    }

    /// Absorbs an L2 writeback (installs the line dirty).
    pub(crate) fn writeback(&mut self, line: u64) {
        if let Some(v) = self.array.install(line, LineState::Modified) {
            if v.state == LineState::Modified {
                self.dirty_evictions += 1;
            }
        }
    }

    /// Installs a clean copy (e.g. shadowing a cache-to-cache transfer).
    pub(crate) fn install_clean(&mut self, line: u64) {
        if self.array.probe(line).is_none() {
            if let Some(v) = self.array.install(line, LineState::Shared) {
                if v.state == LineState::Modified {
                    self.dirty_evictions += 1;
                }
            }
        }
    }

    /// Advances one cycle; completed requests accumulate and are drained
    /// with [`L3::take_ready`].
    pub(crate) fn tick(&mut self, now: Cycle) {
        while let Some(req) = self.lookups.pop_ready(now) {
            if self.array.access(req.line).is_some() {
                self.ready.push(L3Ready {
                    req,
                    from_dram: false,
                });
            } else {
                self.dram_accesses.inc();
                self.dram.push(now + self.dram_latency, req);
            }
        }
        while let Some(req) = self.dram.pop_ready(now) {
            if let Some(v) = self.array.install(req.line, LineState::Shared) {
                if v.state == LineState::Modified {
                    self.dirty_evictions += 1;
                }
            }
            self.ready.push(L3Ready {
                req,
                from_dram: true,
            });
        }
    }

    /// Moves serviced requests awaiting the bus data channel into `out`
    /// (cleared first); both buffers keep their capacity.
    pub(crate) fn take_ready(&mut self, out: &mut Vec<L3Ready>) {
        out.clear();
        std::mem::swap(out, &mut self.ready);
    }

    /// Whether a request for `line` is currently at the DRAM stage.
    #[cfg(test)]
    pub(crate) fn line_in_dram(&self, line: u64, requester: CoreId) -> bool {
        self.dram
            .iter()
            .any(|r| r.line == line && r.requester == requester)
    }

    /// Every `(line, requester)` currently at the DRAM stage — lets the
    /// stall-attribution sweep walk the DRAM residents directly instead
    /// of probing every busy line for every core.
    pub(crate) fn in_dram(&self) -> impl Iterator<Item = (u64, CoreId)> + '_ {
        self.dram.iter().map(|r| (r.line, r.requester))
    }

    /// Conservative lower bound on the L3's next state change: the head
    /// stamps of the lookup and DRAM pipelines (exact), plus `now + 1`
    /// defensively while serviced requests sit undrained.
    pub(crate) fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut best: Option<Cycle> = None;
        let mut fold = |t: Cycle| {
            let t = t.max(now.next());
            best = Some(best.map_or(t, |b| b.min(t)));
        };
        if let Some(t) = self.lookups.next_ready() {
            fold(t);
        }
        if let Some(t) = self.dram.next_ready() {
            fold(t);
        }
        if !self.ready.is_empty() {
            fold(now.next());
        }
        best
    }

    /// Whether the L3 has no in-flight work.
    pub(crate) fn is_idle(&self) -> bool {
        self.lookups.is_empty() && self.dram.is_empty() && self.ready.is_empty()
    }

    /// DRAM accesses made.
    pub(crate) fn dram_accesses(&self) -> u64 {
        self.dram_accesses.value()
    }

    /// L3/DRAM named counters for the unified metrics report.
    pub(crate) fn counters(&self) -> Vec<Counter> {
        let mut l3_hits = Counter::new("mem.l3_hits");
        l3_hits.add(self.array.hits());
        let mut l3_misses = Counter::new("mem.l3_misses");
        l3_misses.add(self.array.misses());
        vec![l3_hits, l3_misses, self.dram_accesses.clone()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l3() -> L3 {
        L3::new(CacheGeometry::new(1536 * 1024, 12, 128), 13, 141).unwrap()
    }

    fn req(line: u64) -> L3Req {
        L3Req {
            line,
            requester: CoreId(0),
            fill: LineState::Shared,
        }
    }

    #[test]
    fn miss_goes_to_dram_then_hits() {
        let mut c = l3();
        c.request(req(7), Cycle::new(0));
        let mut ready_at = None;
        for t in 0..200 {
            c.tick(Cycle::new(t));
            let mut r = Vec::new();
            c.take_ready(&mut r);
            if !r.is_empty() {
                ready_at = Some((t, r[0]));
                break;
            }
        }
        let (t, r) = ready_at.expect("request serviced");
        assert_eq!(t, 13 + 141);
        assert!(r.from_dram);
        assert_eq!(c.dram_accesses(), 1);

        // Second access to the same line: L3 hit.
        c.request(req(7), Cycle::new(200));
        let mut hit_at = None;
        for t in 200..260 {
            c.tick(Cycle::new(t));
            let mut r = Vec::new();
            c.take_ready(&mut r);
            if !r.is_empty() {
                hit_at = Some((t, r[0]));
                break;
            }
        }
        let (t, r) = hit_at.unwrap();
        assert_eq!(t, 200 + 13);
        assert!(!r.from_dram);
        assert_eq!(c.dram_accesses(), 1);
    }

    #[test]
    fn writeback_makes_future_access_hit() {
        let mut c = l3();
        c.writeback(42);
        c.request(req(42), Cycle::new(0));
        for t in 0..20 {
            c.tick(Cycle::new(t));
            let mut ready = Vec::new();
            c.take_ready(&mut ready);
            if let Some(r) = ready.into_iter().next() {
                assert!(!r.from_dram);
                return;
            }
        }
        panic!("no response");
    }

    #[test]
    fn install_clean_does_not_clobber_dirty() {
        let mut c = l3();
        c.writeback(9);
        c.install_clean(9);
        assert_eq!(c.array.probe(9), Some(LineState::Modified));
    }

    #[test]
    fn line_in_dram_visibility() {
        let mut c = l3();
        c.request(req(3), Cycle::new(0));
        for t in 0..20 {
            c.tick(Cycle::new(t));
        }
        assert!(c.line_in_dram(3, CoreId(0)));
        assert!(!c.line_in_dram(4, CoreId(0)));
        assert!(!c.line_in_dram(3, CoreId(1)));
    }

    #[test]
    fn idle_tracking() {
        let mut c = l3();
        assert!(c.is_idle());
        c.request(req(1), Cycle::new(0));
        assert!(!c.is_idle());
    }
}

//! Set-associative cache arrays with LRU replacement and coherence line
//! states shared by every protocol (MSI, MESI, Dragon).

use hfs_sim::stats::Counter;
use hfs_sim::ConfigError;

/// Geometry of a set-associative cache.
///
/// # Example
///
/// ```
/// use hfs_mem::CacheGeometry;
///
/// let l2 = CacheGeometry::new(256 * 1024, 8, 128);
/// assert_eq!(l2.sets(), 256);
/// assert!(l2.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
}

impl CacheGeometry {
    /// Creates a geometry description.
    pub const fn new(bytes: u64, ways: u32, line_bytes: u64) -> Self {
        CacheGeometry {
            bytes,
            ways,
            line_bytes,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.bytes / (u64::from(self.ways) * self.line_bytes)
    }

    /// Validates that the geometry describes a realizable cache.
    ///
    /// # Errors
    ///
    /// Rejects zero sizes, non-power-of-two line sizes, and capacities
    /// that do not divide evenly into sets.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.bytes == 0 || self.ways == 0 || self.line_bytes == 0 {
            return Err(ConfigError::new("cache dimensions must be non-zero"));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::new("cache line size must be a power of two"));
        }
        let row = u64::from(self.ways) * self.line_bytes;
        if !self.bytes.is_multiple_of(row) || self.bytes / row == 0 {
            return Err(ConfigError::new(
                "cache capacity must be a positive multiple of ways x line size",
            ));
        }
        Ok(())
    }
}

/// Coherence state of a cached line.
///
/// One unified state space covers all three protocols: MSI uses only
/// `Modified`/`Shared`, MESI adds `Exclusive`, and Dragon maps its four
/// states as EM→`Modified`, EC→`Exclusive`, SC→`Shared`,
/// SM→`SharedModified`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LineState {
    /// Modified (Dragon EM): this cache owns the only, dirty copy.
    Modified,
    /// Exclusive (Dragon EC): the only copy, still clean. MESI/Dragon
    /// only; a store upgrades it to Modified with no bus transaction.
    Exclusive,
    /// Shared (Dragon SC): clean, possibly replicated.
    Shared,
    /// Shared-Modified (Dragon SM): dirty but replicated; this cache is
    /// the owner responsible for writeback and for supplying readers.
    SharedModified,
}

impl LineState {
    /// Whether eviction of a line in this state requires a writeback.
    pub fn dirty(self) -> bool {
        matches!(self, LineState::Modified | LineState::SharedModified)
    }
}

/// One resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    /// Line number (`addr / line_bytes`).
    line: u64,
    state: LineState,
    /// LRU stamp: larger = more recently used.
    lru: u64,
}

/// The outcome of inserting a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Victim {
    /// The evicted line number.
    pub line: u64,
    /// Its state at eviction (dirty victims require writeback).
    pub state: LineState,
}

/// A set-associative tag array with LRU replacement.
///
/// Stores *presence and state only*; data values live in the simulator's
/// functional memory. All methods take line numbers (see
/// [`hfs_isa::Addr::line`]).
#[derive(Debug, Clone)]
pub struct CacheArray {
    geom: CacheGeometry,
    sets: Vec<Vec<Way>>,
    stamp: u64,
    hits: Counter,
    misses: Counter,
}

impl CacheArray {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheGeometry::validate`] failures.
    pub fn new(geom: CacheGeometry) -> Result<Self, ConfigError> {
        geom.validate()?;
        let sets = (0..geom.sets()).map(|_| Vec::new()).collect();
        Ok(CacheArray {
            geom,
            sets,
            stamp: 0,
            hits: Counter::new("hits"),
            misses: Counter::new("misses"),
        })
    }

    /// The configured geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_index(&self, line: u64) -> usize {
        (line % self.geom.sets()) as usize
    }

    /// Looks up `line`, updating LRU and hit/miss statistics.
    pub fn access(&mut self, line: u64) -> Option<LineState> {
        self.stamp += 1;
        let stamp = self.stamp;
        let set = self.set_index(line);
        match self.sets[set].iter_mut().find(|w| w.line == line) {
            Some(w) => {
                w.lru = stamp;
                self.hits.inc();
                Some(w.state)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Replays `n` back-to-back lookups of `line` in bulk, advancing
    /// the LRU stamp and hit/miss statistics exactly as `n` calls to
    /// [`CacheArray::access`] would. Used by fast-forward to account
    /// repeated probes from a structurally blocked pipeline without
    /// simulating each cycle.
    pub fn replay_accesses(&mut self, line: u64, n: u64) {
        self.stamp += n;
        let stamp = self.stamp;
        let set = self.set_index(line);
        match self.sets[set].iter_mut().find(|w| w.line == line) {
            Some(w) => {
                w.lru = stamp;
                self.hits.add(n);
            }
            None => self.misses.add(n),
        }
    }

    /// Looks up `line` without touching LRU or statistics.
    pub fn probe(&self, line: u64) -> Option<LineState> {
        let set = self.set_index(line);
        self.sets[set]
            .iter()
            .find(|w| w.line == line)
            .map(|w| w.state)
    }

    /// Installs `line` in `state`, evicting the LRU way if the set is
    /// full. Returns the victim, if any. Installing an already-present
    /// line updates its state in place and returns `None`.
    pub fn install(&mut self, line: u64, state: LineState) -> Option<Victim> {
        self.stamp += 1;
        let stamp = self.stamp;
        let ways = self.geom.ways as usize;
        let set = self.set_index(line);
        let set_ways = &mut self.sets[set];
        if let Some(w) = set_ways.iter_mut().find(|w| w.line == line) {
            w.state = state;
            w.lru = stamp;
            return None;
        }
        let victim = if set_ways.len() >= ways {
            let (idx, _) = set_ways
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.lru)
                .expect("non-empty set");
            let v = set_ways.swap_remove(idx);
            Some(Victim {
                line: v.line,
                state: v.state,
            })
        } else {
            None
        };
        set_ways.push(Way {
            line,
            state,
            lru: stamp,
        });
        victim
    }

    /// Changes the state of a resident line; no-op if absent.
    pub fn set_state(&mut self, line: u64, state: LineState) {
        let set = self.set_index(line);
        if let Some(w) = self.sets[set].iter_mut().find(|w| w.line == line) {
            w.state = state;
        }
    }

    /// Removes `line`, returning its state if it was resident.
    pub fn invalidate(&mut self, line: u64) -> Option<LineState> {
        let set = self.set_index(line);
        let ways = &mut self.sets[set];
        ways.iter()
            .position(|w| w.line == line)
            .map(|i| ways.swap_remove(i).state)
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Lookup hits recorded by [`CacheArray::access`].
    pub fn hits(&self) -> u64 {
        self.hits.value()
    }

    /// Lookup misses recorded by [`CacheArray::access`].
    pub fn misses(&self) -> u64 {
        self.misses.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> CacheArray {
        // 2 sets, 2 ways, 64B lines.
        CacheArray::new(CacheGeometry::new(256, 2, 64)).unwrap()
    }

    #[test]
    fn geometry_sets() {
        assert_eq!(CacheGeometry::new(16 * 1024, 4, 64).sets(), 64);
        assert_eq!(CacheGeometry::new(1536 * 1024, 12, 128).sets(), 1024);
    }

    #[test]
    fn geometry_rejects_invalid() {
        assert!(CacheGeometry::new(0, 1, 64).validate().is_err());
        assert!(CacheGeometry::new(256, 0, 64).validate().is_err());
        assert!(CacheGeometry::new(256, 2, 48).validate().is_err());
        assert!(CacheGeometry::new(100, 2, 64).validate().is_err());
    }

    #[test]
    fn hit_after_install() {
        let mut c = tiny();
        assert_eq!(c.access(4), None);
        assert!(c.install(4, LineState::Shared).is_none());
        assert_eq!(c.access(4), Some(LineState::Shared));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        c.install(0, LineState::Shared);
        c.install(2, LineState::Modified);
        c.access(0); // 0 now MRU; 2 is LRU
        let v = c.install(4, LineState::Shared).expect("eviction");
        assert_eq!(v.line, 2);
        assert_eq!(v.state, LineState::Modified);
        assert!(c.probe(0).is_some());
        assert!(c.probe(2).is_none());
    }

    #[test]
    fn install_existing_updates_state() {
        let mut c = tiny();
        c.install(6, LineState::Shared);
        assert!(c.install(6, LineState::Modified).is_none());
        assert_eq!(c.probe(6), Some(LineState::Modified));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.install(8, LineState::Modified);
        assert_eq!(c.invalidate(8), Some(LineState::Modified));
        assert_eq!(c.invalidate(8), None);
        assert_eq!(c.probe(8), None);
    }

    #[test]
    fn set_state_changes_resident_only() {
        let mut c = tiny();
        c.set_state(10, LineState::Modified); // absent: no-op
        assert_eq!(c.probe(10), None);
        c.install(10, LineState::Shared);
        c.set_state(10, LineState::Modified);
        assert_eq!(c.probe(10), Some(LineState::Modified));
    }

    #[test]
    fn probe_does_not_affect_lru() {
        let mut c = tiny();
        c.install(0, LineState::Shared);
        c.install(2, LineState::Shared);
        // Probing 0 must NOT refresh it; 0 stays LRU and gets evicted.
        c.probe(0);
        let v = c.install(4, LineState::Shared).unwrap();
        assert_eq!(v.line, 0);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = tiny();
        c.install(0, LineState::Shared); // set 0
        c.install(1, LineState::Shared); // set 1
        c.install(2, LineState::Shared); // set 0
        c.install(3, LineState::Shared); // set 1
        assert_eq!(c.resident(), 4);
    }
}

//! Memory substrate for the `hfs` CMP simulator.
//!
//! Models the machine of Table 2 in the paper: per-core write-through L1D
//! caches, private write-back L2 caches with an ordered transaction queue
//! (OzQ — the Itanium 2 structure whose entries double as MSHRs), a shared
//! L3, fixed-latency DRAM, a snoop-based write-invalidate (MSI) coherence
//! protocol, and a split-transaction pipelined shared bus with round-robin
//! arbitration and configurable width and clock divider.
//!
//! The crate is *timing-directed with functional backing*: a sparse
//! [`FuncMem`] holds 64-bit words; loads sample their value at the moment
//! the timing model services them, and stores update it when they perform
//! at the L2 (i.e. after ownership is acquired). Because a store can only
//! perform after remote copies are invalidated, value sampling is exact
//! for the single-writer flag protocol used by software queues.
//!
//! Streaming support hooks (used by `hfs-core` to build the paper's design
//! points):
//!
//! * *gated submissions* — produce/consume operations that wait dormant in
//!   an OzQ slot (no port recirculation) until released by occupancy
//!   counters (§4.2, SYNCOPTI),
//! * *line forwarding* — write-forward push of a streaming line from the
//!   producer's L2 into the consumer's L2 (§3.5.1),
//! * *control messages* — small bus messages for bulk occupancy ACKs,
//! * an event stream ([`MemEvent`]) reporting performed stores, fills,
//!   forwards, and evictions to the machine model.

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod bus;
mod cache;
pub mod config;
mod func;
mod l1;
mod l2;
mod l3;
mod msg;
mod system;

pub use bus::BusStats;
pub use cache::{CacheArray, CacheGeometry, LineState};
pub use config::{BusConfig, MemConfig, Protocol};
pub use func::FuncMem;
pub use msg::{Completion, CtlPayload, MemEvent, MemToken, OpLocation, RejectReason};
pub use system::{MemOp, MemStats, MemSystem, Submit};

//! The private L2 controller with its ordered transaction queue (OzQ).
//!
//! The Itanium 2's L2 controller holds outstanding transactions in an
//! ordered queue whose entries double as MSHRs (the paper's footnote 1).
//! Operations that cannot complete *recirculate*: they re-arbitrate for an
//! L2 port every few cycles, consuming port bandwidth — the behavior that
//! explains why MEMOPTI can lose to EXISTING (§4.4). Gated streaming
//! operations (SYNCOPTI produce/consume) instead wait *dormant* in their
//! slot, consuming no ports, until the occupancy logic releases them.

use hfs_check::{Checker, Mutation};
use hfs_isa::{Addr, CoreId};
use hfs_sim::stats::Counter;
use hfs_sim::{ConfigError, Cycle, FnvMap};
use hfs_trace::{TraceEvent, Tracer};

use crate::cache::{CacheArray, CacheGeometry, LineState};
use crate::config::Protocol;
use crate::msg::OpLocation;

/// Sentinel wake time for "no timed work pending".
const NEVER: Cycle = Cycle::new(u64::MAX);

/// What an OzQ entry is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryState {
    /// Gated: waiting for a streaming-synchronization release.
    Dormant,
    /// Waiting to win an L2 port at or after `retry_at`.
    WaitPort { retry_at: Cycle },
    /// Accessing the L2 pipe; resolves at `done_at`.
    InPipe { done_at: Cycle },
    /// Waiting for a line fill / ownership grant for `line`.
    WaitLine { line: u64 },
    /// A forward entry waiting for its bus data transfer to finish.
    ForwardInFlight,
    /// Completed; slot reclaimed at end of tick.
    Done,
}

/// The kind of work an entry carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EntryKind {
    /// A demand load.
    Load,
    /// A store carrying its value. A `release` store may not begin its
    /// L2 access until every earlier memory operation from this core has
    /// performed (Itanium `st.rel` semantics).
    Store { value: u64, release: bool },
    /// A write-forward push of a full streaming line to another core.
    Forward { to: CoreId },
}

#[derive(Debug, Clone, Copy)]
struct OzqEntry {
    id: u64,
    addr: Addr,
    kind: EntryKind,
    background: bool,
    state: EntryState,
}

/// Where an outstanding line request currently is (updated by the system
/// as bus/L3/DRAM stages progress); used for stall attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LineStage {
    /// Needs (re-)issuing to the bus at or after the given cycle.
    WantIssue { retry_at: Cycle, exclusive: bool },
    /// Address phase issued / in flight on the bus.
    OnBus,
    /// Being serviced by the L3.
    InL3,
    /// Being serviced by DRAM.
    InDram,
    /// Data transfer on its way back.
    Incoming,
}

/// Actions the L2 asks the system to carry out this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum L2Outcome {
    /// A load hit; sample the functional value and schedule completion.
    LoadHit {
        /// Entry id.
        id: u64,
        /// Load address.
        addr: Addr,
        /// Background flag.
        background: bool,
    },
    /// A store performed (line held in Modified).
    StorePerform {
        /// Entry id.
        id: u64,
        /// Store address.
        addr: Addr,
        /// Value to write to functional memory.
        value: u64,
        /// Background flag.
        background: bool,
    },
    /// Issue a bus request for a line.
    NeedLine {
        /// Line number.
        line: u64,
        /// True for RdX/Upgr (ownership), false for Rd.
        exclusive: bool,
        /// True when we hold the line Shared (upgrade suffices).
        have_shared: bool,
    },
    /// A forward entry read its line and wants the bus data channel.
    ForwardReady {
        /// Entry id.
        id: u64,
        /// Line to push.
        line: u64,
        /// Destination core.
        to: CoreId,
    },
    /// A forward entry found its line gone; it is abandoned.
    ForwardAbort {
        /// Entry id.
        id: u64,
    },
}

/// A line evicted by a fill, to be handled by the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct L2Victim {
    pub line: u64,
    pub dirty: bool,
}

/// An operation satisfied at fill time (MSHR refill semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ResolvedWaiter {
    pub id: u64,
    pub addr: Addr,
    pub kind: EntryKind,
    pub background: bool,
}

#[derive(Debug)]
pub(crate) struct L2Ctl {
    core: CoreId,
    array: CacheArray,
    line_bytes: u64,
    /// Coherence protocol: decides how stores to Shared/Exclusive lines
    /// resolve and which states snoops leave behind.
    protocol: Protocol,
    latency_min: u64,
    ports: u32,
    capacity: u32,
    recirc: u64,
    entries: Vec<OzqEntry>,
    next_id: u64,
    pending_lines: FnvMap<LineStage>,
    /// Reused each tick for expired NACK backoffs (no per-cycle alloc).
    reissue_scratch: Vec<(u64, bool)>,
    /// Conservative earliest cycle with timed work for [`L2Ctl::tick`]
    /// (pipe resolution due, port arbitration, NACK reissue) — ratcheted
    /// down by every transition into a timed state, recomputed exactly by
    /// each non-skipped tick. [`NEVER`] when no timed work exists, which
    /// lets quiet ticks return without scanning the OzQ.
    wake_at: Cycle,
    // Statistics.
    pipe_accesses: Counter,
    port_conflicts: Counter,
    tracer: Tracer,
    checker: Checker,
}

impl L2Ctl {
    pub(crate) fn new(
        core: CoreId,
        geom: CacheGeometry,
        latency_min: u64,
        ports: u32,
        capacity: u32,
        recirc: u64,
    ) -> Result<Self, ConfigError> {
        Ok(L2Ctl {
            core,
            line_bytes: geom.line_bytes,
            array: CacheArray::new(geom)?,
            protocol: Protocol::Msi,
            latency_min,
            ports,
            capacity,
            recirc,
            entries: Vec::new(),
            next_id: 0,
            pending_lines: FnvMap::new(),
            reissue_scratch: Vec::new(),
            wake_at: NEVER,
            pipe_accesses: Counter::new("mem.l2_accesses"),
            port_conflicts: Counter::new("mem.l2_port_conflicts"),
            tracer: Tracer::disabled(),
            checker: Checker::disabled(),
        })
    }

    pub(crate) fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    pub(crate) fn set_checker(&mut self, checker: Checker) {
        self.checker = checker;
    }

    pub(crate) fn set_protocol(&mut self, protocol: Protocol) {
        self.protocol = protocol;
    }

    pub(crate) fn line_of(&self, addr: Addr) -> u64 {
        addr.line(self.line_bytes)
    }

    /// Records a transition into a timed state so the next [`L2Ctl::tick`]
    /// at or after `t` runs the full scan.
    fn note_wake(&mut self, t: Cycle) {
        self.wake_at = self.wake_at.min(t);
    }

    /// Free OzQ slots.
    pub(crate) fn free_slots(&self) -> u32 {
        self.capacity - self.entries.len() as u32
    }

    /// Entries currently in flight (for fence draining).
    pub(crate) fn occupancy(&self) -> usize {
        self.entries.len()
    }

    /// Total OzQ slots (for the machine checker's occupancy audit).
    pub(crate) fn capacity(&self) -> usize {
        self.capacity as usize
    }

    /// Outstanding store entries (release-fence draining: `st.rel`
    /// orders stores without waiting for in-flight loads).
    pub(crate) fn pending_stores(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.kind, EntryKind::Store { .. }))
            .count()
    }

    /// Allocates an entry. Caller must have checked [`L2Ctl::free_slots`].
    pub(crate) fn allocate(
        &mut self,
        addr: Addr,
        kind: EntryKind,
        background: bool,
        gated: bool,
        now: Cycle,
    ) -> u64 {
        debug_assert!(self.free_slots() > 0, "OzQ overflow");
        let id = self.next_id;
        self.next_id += 1;
        let state = if gated {
            EntryState::Dormant
        } else {
            self.note_wake(now);
            EntryState::WaitPort { retry_at: now }
        };
        self.checker.on_ozq_insert(self.core);
        // Fault injection: account the insert but never occupy the slot —
        // the conservation audit must flag the phantom entry.
        if self.checker.fire_once(Mutation::LeakOzqSlot) {
            return id;
        }
        self.entries.push(OzqEntry {
            id,
            addr,
            kind,
            background,
            state,
        });
        id
    }

    /// Releases a gated (dormant) entry so it arbitrates for a port.
    /// Returns false if the entry no longer exists.
    pub(crate) fn release(&mut self, id: u64, now: Cycle) -> bool {
        match self.entries.iter_mut().find(|e| e.id == id) {
            Some(e) if e.state == EntryState::Dormant => {
                e.state = EntryState::WaitPort { retry_at: now };
                self.wake_at = self.wake_at.min(now);
                true
            }
            Some(_) => true,
            None => false,
        }
    }

    /// Stall-attribution location of entry `id`.
    pub(crate) fn location(&self, id: u64) -> Option<OpLocation> {
        let e = self.entries.iter().find(|e| e.id == id)?;
        Some(match e.state {
            EntryState::Dormant => OpLocation::Dormant,
            EntryState::WaitPort { .. } => OpLocation::WaitPort,
            EntryState::InPipe { .. } => OpLocation::InL2,
            EntryState::ForwardInFlight => OpLocation::OnBus,
            EntryState::Done => OpLocation::Filling,
            EntryState::WaitLine { line } => match self.pending_lines.get(line) {
                Some(LineStage::WantIssue { .. }) | Some(LineStage::OnBus) => OpLocation::OnBus,
                Some(LineStage::InL3) => OpLocation::InL3,
                Some(LineStage::InDram) => OpLocation::InDram,
                Some(LineStage::Incoming) => OpLocation::OnBus,
                None => OpLocation::WaitPort,
            },
        })
    }

    /// Advances one cycle: grants ports, resolves pipe accesses, and
    /// re-issues NACKed line requests. Outcomes for the system are
    /// appended to the caller-owned `out` buffer.
    pub(crate) fn tick(&mut self, now: Cycle, out: &mut Vec<L2Outcome>) {
        // Quiet tick: nothing is due — no pipe access resolves, no entry
        // arbitrates, no reissue timer expired — so the full scan below
        // would be a no-op. Entries in untimed states (dormant, waiting
        // on a line or the bus) advance only via external calls, which
        // ratchet `wake_at` back down.
        if self.wake_at > now {
            return;
        }

        // 1. Resolve pipe accesses that finish this cycle.
        for i in 0..self.entries.len() {
            let (id, addr, kind, background, state) = {
                let e = &self.entries[i];
                (e.id, e.addr, e.kind, e.background, e.state)
            };
            if let EntryState::InPipe { done_at } = state {
                if done_at > now {
                    continue;
                }
                let line = self.line_of(addr);
                let present = self.array.access(line);
                match kind {
                    EntryKind::Forward { to } => match present {
                        // A forward needs a dirty copy to push (Modified,
                        // or the Dragon SM owner).
                        Some(s) if s.dirty() => {
                            self.entries[i].state = EntryState::ForwardInFlight;
                            out.push(L2Outcome::ForwardReady { id, line, to });
                        }
                        _ => {
                            self.entries[i].state = EntryState::Done;
                            out.push(L2Outcome::ForwardAbort { id });
                        }
                    },
                    EntryKind::Load => match present {
                        Some(_) => {
                            self.entries[i].state = EntryState::Done;
                            out.push(L2Outcome::LoadHit {
                                id,
                                addr,
                                background,
                            });
                        }
                        None => {
                            self.entries[i].state = EntryState::WaitLine { line };
                            self.want_line(line, false, false, now, out);
                        }
                    },
                    EntryKind::Store { value, .. } => match present {
                        Some(LineState::Modified) => {
                            self.entries[i].state = EntryState::Done;
                            out.push(L2Outcome::StorePerform {
                                id,
                                addr,
                                value,
                                background,
                            });
                        }
                        Some(LineState::Exclusive) => {
                            // MESI silent E→M (Dragon EC→EM): the only
                            // copy upgrades with no bus transaction.
                            self.array.set_state(line, LineState::Modified);
                            self.entries[i].state = EntryState::Done;
                            out.push(L2Outcome::StorePerform {
                                id,
                                addr,
                                value,
                                background,
                            });
                        }
                        Some(LineState::Shared) | Some(LineState::SharedModified) => {
                            // MSI/MESI: request an ownership upgrade.
                            // Dragon: request a bus-update broadcast (the
                            // system maps exclusive+have_shared to Upd).
                            self.entries[i].state = EntryState::WaitLine { line };
                            self.want_line(line, true, true, now, out);
                        }
                        None => {
                            self.entries[i].state = EntryState::WaitLine { line };
                            self.want_line(line, true, false, now, out);
                        }
                    },
                }
            }
        }

        // 2. Grant up to `ports` pipe starts to waiting entries in order.
        // A release store is held back (without consuming ports) until it
        // is the oldest memory operation remaining from this core.
        let mut granted = 0u32;
        for i in 0..self.entries.len() {
            let state = self.entries[i].state;
            let EntryState::WaitPort { retry_at } = state else {
                continue;
            };
            if retry_at > now {
                continue;
            }
            if matches!(self.entries[i].kind, EntryKind::Store { release: true, .. })
                && self.entries[..i]
                    .iter()
                    .any(|p| !matches!(p.kind, EntryKind::Forward { .. }))
            {
                continue; // ordered behind earlier accesses
            }
            if granted >= self.ports {
                // Beaten in arbitration: recirculate after the interval.
                self.port_conflicts.inc();
                self.tracer.emit(|| TraceEvent::OzqRecirc {
                    core: self.core,
                    at: now.as_u64(),
                });
                self.entries[i].state = EntryState::WaitPort {
                    retry_at: now + self.recirc,
                };
                continue;
            }
            let line = self.entries[i].addr.line(self.line_bytes);
            let lat = self.latency_min + 2 * (line % 3);
            self.entries[i].state = EntryState::InPipe { done_at: now + lat };
            self.pipe_accesses.inc();
            granted += 1;
        }

        // 3. Re-issue line requests whose NACK backoff expired. Sorted by
        // line number so the reissue order is a function of simulation
        // state, not of the map's probe layout.
        let mut reissue = std::mem::take(&mut self.reissue_scratch);
        reissue.clear();
        for (line, stage) in self.pending_lines.iter() {
            if let LineStage::WantIssue {
                retry_at,
                exclusive,
            } = *stage
            {
                if retry_at <= now {
                    reissue.push((line, exclusive));
                }
            }
        }
        reissue.sort_unstable_by_key(|&(line, _)| line);
        for &(line, exclusive) in &reissue {
            let have_shared = matches!(
                self.array.probe(line),
                Some(LineState::Shared) | Some(LineState::SharedModified)
            );
            self.pending_lines.insert(line, LineStage::OnBus);
            out.push(L2Outcome::NeedLine {
                line,
                exclusive,
                have_shared,
            });
        }
        self.reissue_scratch = reissue;

        // 4. Reclaim finished slots.
        let before = self.entries.len();
        self.entries.retain(|e| e.state != EntryState::Done);
        self.note_removed(before);

        // 5. Recompute the exact next wake time from the post-tick state.
        let mut wake = NEVER;
        for e in &self.entries {
            match e.state {
                EntryState::WaitPort { retry_at } => wake = wake.min(retry_at),
                EntryState::InPipe { done_at } => wake = wake.min(done_at),
                EntryState::Dormant
                | EntryState::WaitLine { .. }
                | EntryState::ForwardInFlight
                | EntryState::Done => {}
            }
        }
        for (_, stage) in self.pending_lines.iter() {
            if let LineStage::WantIssue { retry_at, .. } = *stage {
                wake = wake.min(retry_at);
            }
        }
        self.wake_at = wake;
    }

    /// Conservative lower bound on the next cycle at which this
    /// controller can make progress on its own (port grants, pipe
    /// resolutions, NACK-backoff reissues). Entries driven purely by
    /// external events — dormant gated operations, line waiters, forwards
    /// on the bus — contribute nothing; their wake-ups show up through
    /// the bus/L3 bounds instead. Returns `None` when every entry is
    /// externally driven (or there are none).
    pub(crate) fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // `wake_at` is exactly the minimum this method used to scan for:
        // WaitPort retry times (a held-back release store keeps its
        // `retry_at <= now`, so the floor clamp forbids any skip while it
        // waits), InPipe resolution times, and WantIssue reissue timers.
        if self.wake_at == NEVER {
            None
        } else {
            Some(self.wake_at.max(now.next()))
        }
    }

    fn want_line(
        &mut self,
        line: u64,
        exclusive: bool,
        have_shared: bool,
        _now: Cycle,
        out: &mut Vec<L2Outcome>,
    ) {
        match self.pending_lines.get_mut(line) {
            Some(stage) => {
                // Escalate a pending shared request to exclusive if a
                // store arrived behind a load (handled at refetch: the
                // store will re-discover state). Keep the stronger need.
                if exclusive {
                    if let LineStage::WantIssue {
                        exclusive: ex @ false,
                        ..
                    } = stage
                    {
                        *ex = true;
                    }
                }
            }
            None => {
                self.pending_lines.insert(line, LineStage::OnBus);
                out.push(L2Outcome::NeedLine {
                    line,
                    exclusive,
                    have_shared,
                });
            }
        }
    }

    /// The bus NACKed our request for `line` (another transaction on the
    /// line is in flight); back off and retry.
    pub(crate) fn nack_line(&mut self, line: u64, retry_at: Cycle, exclusive: bool) {
        self.note_wake(retry_at);
        self.pending_lines.insert(
            line,
            LineStage::WantIssue {
                retry_at,
                exclusive,
            },
        );
    }

    /// Progress notifications from the system for stall attribution.
    pub(crate) fn line_stage(&mut self, line: u64, stage: LineStage) {
        if let Some(s) = self.pending_lines.get_mut(line) {
            *s = stage;
        }
    }

    /// Installs a filled line. Returns the victim, if the fill evicted
    /// one. Waiting entries are *not* woken here — call
    /// [`L2Ctl::drain_line_waiters`] right after, so the fill satisfies
    /// them atomically (MSHR semantics) before another core's snoop can
    /// steal the line back; without this, two cores ping-ponging a line
    /// can livelock, each stealing it before the other's waiting access
    /// finishes its pipe pass.
    pub(crate) fn fill(&mut self, line: u64, state: LineState, _now: Cycle) -> Option<L2Victim> {
        self.pending_lines.remove(line);
        self.array.install(line, state).map(|v| L2Victim {
            line: v.line,
            dirty: v.state.dirty(),
        })
    }

    /// Resolves entries waiting on `line` after a fill or upgrade/update
    /// grant: loads always complete; stores complete only when the line
    /// is writable under the active protocol — Modified everywhere,
    /// plus Exclusive under MESI/Dragon (silent upgrade on resolution)
    /// and SharedModified under Dragon (a granted bus-update). Otherwise
    /// they re-arbitrate to request ownership (or an update). Returns
    /// the resolved operations in OzQ (program) order.
    pub(crate) fn drain_line_waiters(&mut self, line: u64, now: Cycle) -> Vec<ResolvedWaiter> {
        let writable = match self.array.probe(line) {
            Some(LineState::Modified) => true,
            Some(LineState::Exclusive) => self.protocol != Protocol::Msi,
            Some(LineState::SharedModified) => self.protocol == Protocol::Dragon,
            _ => false,
        };
        let mut upgrade_exclusive = false;
        let mut wake = NEVER;
        let mut out = Vec::new();
        for e in &mut self.entries {
            if e.state != (EntryState::WaitLine { line }) {
                continue;
            }
            let resolve = match e.kind {
                EntryKind::Load => true,
                EntryKind::Store { .. } => {
                    upgrade_exclusive |= writable;
                    writable
                }
                EntryKind::Forward { .. } => false,
            };
            if resolve {
                e.state = EntryState::Done;
                out.push(ResolvedWaiter {
                    id: e.id,
                    addr: e.addr,
                    kind: e.kind,
                    background: e.background,
                });
            } else {
                // Re-arbitrate (e.g. a store that only got a Shared copy
                // and must upgrade).
                e.state = EntryState::WaitPort { retry_at: now };
                wake = wake.min(now);
            }
        }
        if upgrade_exclusive && self.array.probe(line) == Some(LineState::Exclusive) {
            // A store resolved against an Exclusive fill: the silent
            // upgrade happens at resolution (MESI E→M, Dragon EC→EM).
            self.array.set_state(line, LineState::Modified);
        }
        self.wake_at = self.wake_at.min(wake);
        let before = self.entries.len();
        self.entries.retain(|e| e.state != EntryState::Done);
        self.note_removed(before);
        out
    }

    /// Snoop for a read: a dirty owner must supply the line. Under
    /// MSI/MESI it downgrades to Shared; under Dragon the owner keeps
    /// ownership as SharedModified. A MESI/Dragon Exclusive-clean copy
    /// downgrades to Shared without supplying (the L3 shadow serves).
    /// Returns true when we supply.
    pub(crate) fn snoop_rd(&mut self, line: u64) -> bool {
        match self.array.probe(line) {
            Some(LineState::Modified) => {
                let next = if self.protocol == Protocol::Dragon {
                    LineState::SharedModified
                } else {
                    LineState::Shared
                };
                self.array.set_state(line, next);
                true
            }
            Some(LineState::SharedModified) => true,
            Some(LineState::Exclusive) => {
                self.array.set_state(line, LineState::Shared);
                false
            }
            _ => false,
        }
    }

    /// Snoop for an exclusive read / upgrade: invalidate our copy.
    /// Returns `(had_line, had_dirty)`. Never called under Dragon.
    pub(crate) fn snoop_inv(&mut self, line: u64) -> (bool, bool) {
        match self.array.invalidate(line) {
            Some(s) => (true, s.dirty()),
            None => (false, false),
        }
    }

    /// Dragon: a bus-update broadcast for `line` reached this L2. Our
    /// copy absorbs the new word and continues as a clean sharer (a
    /// previous SM owner hands ownership to the updater). Returns true
    /// when we held the line.
    pub(crate) fn snoop_upd(&mut self, line: u64) -> bool {
        if self.array.probe(line).is_some() {
            self.array.set_state(line, LineState::Shared);
            true
        } else {
            false
        }
    }

    /// A forward data transfer finished: drop the line here (ownership
    /// moved to the destination) and complete the forward entry.
    pub(crate) fn forward_complete(&mut self, id: u64, line: u64) {
        self.array.invalidate(line);
        let before = self.entries.len();
        self.entries.retain(|e| e.id != id);
        self.note_removed(before);
    }

    /// Reports entry reclamations to the checker's OzQ conservation
    /// accounting.
    fn note_removed(&mut self, before: usize) {
        let n = before - self.entries.len();
        if n > 0 {
            self.checker.on_ozq_removed(self.core, n as u64);
        }
    }

    /// Direct state lookup (no LRU effect), for the system's decisions.
    pub(crate) fn probe(&self, line: u64) -> Option<LineState> {
        self.array.probe(line)
    }

    /// Promotes a resident Shared line to Modified after an upgrade
    /// grant. Call [`L2Ctl::drain_line_waiters`] afterwards to resolve the
    /// waiting stores atomically.
    pub(crate) fn grant_upgrade(&mut self, line: u64, _now: Cycle) {
        self.pending_lines.remove(line);
        self.array.set_state(line, LineState::Modified);
    }

    /// Dragon: our bus-update for `line` was granted and delivered. With
    /// sharers left we continue as the SM owner; with none the line is
    /// now exclusively ours (EM). Call [`L2Ctl::drain_line_waiters`]
    /// afterwards to resolve the waiting stores atomically.
    pub(crate) fn grant_update(&mut self, line: u64, any_sharer: bool, _now: Cycle) {
        self.pending_lines.remove(line);
        let next = if any_sharer {
            LineState::SharedModified
        } else {
            LineState::Modified
        };
        self.array.set_state(line, next);
    }

    /// Whether a line request is pending (issued or awaiting reissue).
    #[cfg(test)]
    pub(crate) fn line_pending(&self, line: u64) -> bool {
        self.pending_lines.contains_key(line)
    }

    /// Renders entry states for deadlock diagnostics.
    pub(crate) fn debug_entries(&self) -> String {
        let mut s = String::new();
        for e in &self.entries {
            s.push_str(&format!(
                "[id={} addr={:#x} kind={:?} state={:?}] ",
                e.id,
                e.addr.as_u64(),
                e.kind,
                e.state
            ));
        }
        s.push_str(&format!("pending_lines={:?}", self.pending_lines));
        s
    }

    /// Total pipe accesses granted (port bandwidth consumed).
    pub(crate) fn pipe_accesses(&self) -> u64 {
        self.pipe_accesses.value()
    }

    /// Times an entry lost port arbitration and recirculated.
    pub(crate) fn port_conflicts(&self) -> u64 {
        self.port_conflicts.value()
    }

    /// Tag-array lookup hits (for aggregated L2 counters).
    pub(crate) fn array_hits(&self) -> u64 {
        self.array.hits()
    }

    /// Tag-array lookup misses (for aggregated L2 counters).
    pub(crate) fn array_misses(&self) -> u64 {
        self.array.misses()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2() -> L2Ctl {
        L2Ctl::new(
            CoreId(0),
            CacheGeometry::new(256 * 1024, 8, 128),
            5,
            2,
            16,
            4,
        )
        .unwrap()
    }

    fn drive(c: &mut L2Ctl, from: u64, to: u64) -> Vec<(u64, L2Outcome)> {
        let mut out = Vec::new();
        let mut buf = Vec::new();
        for t in from..to {
            c.tick(Cycle::new(t), &mut buf);
            for o in buf.drain(..) {
                out.push((t, o));
            }
        }
        out
    }

    #[test]
    fn load_miss_requests_line_then_hits_after_fill() {
        let mut c = l2();
        let addr = Addr::new(0x1000);
        let line = c.line_of(addr);
        c.allocate(addr, EntryKind::Load, false, false, Cycle::new(0));
        let out = drive(&mut c, 0, 12);
        assert!(out.iter().any(|(_, o)| matches!(
            o,
            L2Outcome::NeedLine {
                exclusive: false,
                ..
            }
        )));
        assert!(c.line_pending(line));
        // Fill arrives; MSHR semantics satisfy the waiting load at once.
        assert!(c.fill(line, LineState::Shared, Cycle::new(20)).is_none());
        assert!(!c.line_pending(line));
        let waiters = c.drain_line_waiters(line, Cycle::new(20));
        assert_eq!(waiters.len(), 1);
        assert_eq!(waiters[0].kind, EntryKind::Load);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn store_to_shared_needs_upgrade() {
        let mut c = l2();
        let addr = Addr::new(0x2000);
        let line = c.line_of(addr);
        c.fill(line, LineState::Shared, Cycle::new(0));
        c.allocate(
            addr,
            EntryKind::Store {
                value: 7,
                release: false,
            },
            false,
            false,
            Cycle::new(0),
        );
        let out = drive(&mut c, 0, 12);
        assert!(out.iter().any(|(_, o)| matches!(
            o,
            L2Outcome::NeedLine {
                exclusive: true,
                have_shared: true,
                ..
            }
        )));
        c.grant_upgrade(line, Cycle::new(15));
        let waiters = c.drain_line_waiters(line, Cycle::new(15));
        assert_eq!(waiters.len(), 1);
        assert!(matches!(waiters[0].kind, EntryKind::Store { value: 7, .. }));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn store_hit_modified_performs_in_bank_latency() {
        let mut c = l2();
        let addr = Addr::new(0x3000);
        let line = c.line_of(addr);
        c.fill(line, LineState::Modified, Cycle::new(0));
        c.allocate(
            addr,
            EntryKind::Store {
                value: 1,
                release: false,
            },
            false,
            false,
            Cycle::new(0),
        );
        let out = drive(&mut c, 0, 12);
        let (t, _) = out
            .iter()
            .find(|(_, o)| matches!(o, L2Outcome::StorePerform { .. }))
            .expect("store performed");
        // Bank latency is 5/7/9.
        assert!(*t >= 5 && *t <= 9, "perform at {t}");
    }

    #[test]
    fn ports_limit_pipe_starts() {
        let mut c = l2();
        let line = c.line_of(Addr::new(0));
        c.fill(line, LineState::Shared, Cycle::new(0));
        // Four loads to the same (present) line; only 2 ports.
        for _ in 0..4 {
            c.allocate(Addr::new(0), EntryKind::Load, false, false, Cycle::new(0));
        }
        c.tick(Cycle::new(0), &mut Vec::new());
        assert_eq!(c.pipe_accesses(), 2);
        assert_eq!(c.port_conflicts(), 2);
    }

    #[test]
    fn mshr_merges_requests_to_same_line() {
        let mut c = l2();
        for i in 0..2 {
            c.allocate(
                Addr::new(0x4000 + i * 8),
                EntryKind::Load,
                false,
                false,
                Cycle::new(0),
            );
        }
        let out = drive(&mut c, 0, 12);
        let needs = out
            .iter()
            .filter(|(_, o)| matches!(o, L2Outcome::NeedLine { .. }))
            .count();
        assert_eq!(needs, 1, "one bus request per line");
        // Fill satisfies both merged loads.
        let line = c.line_of(Addr::new(0x4000));
        c.fill(line, LineState::Shared, Cycle::new(20));
        let waiters = c.drain_line_waiters(line, Cycle::new(20));
        assert_eq!(waiters.len(), 2);
        assert!(waiters.iter().all(|w| w.kind == EntryKind::Load));
    }

    #[test]
    fn dormant_entry_takes_no_ports_until_release() {
        let mut c = l2();
        let line = c.line_of(Addr::new(0));
        c.fill(line, LineState::Modified, Cycle::new(0));
        let id = c.allocate(
            Addr::new(0),
            EntryKind::Store {
                value: 9,
                release: false,
            },
            false,
            true,
            Cycle::new(0),
        );
        let out = drive(&mut c, 0, 10);
        assert!(out.is_empty());
        assert_eq!(c.pipe_accesses(), 0);
        assert_eq!(c.location(id), Some(OpLocation::Dormant));
        assert!(c.release(id, Cycle::new(10)));
        let out = drive(&mut c, 10, 25);
        assert!(out
            .iter()
            .any(|(_, o)| matches!(o, L2Outcome::StorePerform { value: 9, .. })));
    }

    #[test]
    fn snoop_rd_downgrades_modified() {
        let mut c = l2();
        c.fill(3, LineState::Modified, Cycle::new(0));
        assert!(c.snoop_rd(3));
        assert_eq!(c.probe(3), Some(LineState::Shared));
        assert!(!c.snoop_rd(3)); // already shared: no supply
    }

    #[test]
    fn snoop_inv_reports_states() {
        let mut c = l2();
        c.fill(5, LineState::Modified, Cycle::new(0));
        assert_eq!(c.snoop_inv(5), (true, true));
        assert_eq!(c.snoop_inv(5), (false, false));
        c.fill(6, LineState::Shared, Cycle::new(0));
        assert_eq!(c.snoop_inv(6), (true, false));
    }

    #[test]
    fn forward_entry_pushes_modified_line() {
        let mut c = l2();
        let addr = Addr::new(0x5000);
        let line = c.line_of(addr);
        c.fill(line, LineState::Modified, Cycle::new(0));
        let id = c.allocate(
            addr,
            EntryKind::Forward { to: CoreId(1) },
            false,
            false,
            Cycle::new(0),
        );
        let out = drive(&mut c, 0, 12);
        assert!(out
            .iter()
            .any(|(_, o)| matches!(o, L2Outcome::ForwardReady { to: CoreId(1), .. })));
        c.forward_complete(id, line);
        assert_eq!(c.probe(line), None);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn forward_aborts_when_line_gone() {
        let mut c = l2();
        c.allocate(
            Addr::new(0x6000),
            EntryKind::Forward { to: CoreId(1) },
            false,
            false,
            Cycle::new(0),
        );
        let out = drive(&mut c, 0, 12);
        assert!(out
            .iter()
            .any(|(_, o)| matches!(o, L2Outcome::ForwardAbort { .. })));
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn nack_backs_off_and_reissues() {
        let mut c = l2();
        c.allocate(
            Addr::new(0x7000),
            EntryKind::Load,
            false,
            false,
            Cycle::new(0),
        );
        let out = drive(&mut c, 0, 12);
        assert_eq!(
            out.iter()
                .filter(|(_, o)| matches!(o, L2Outcome::NeedLine { .. }))
                .count(),
            1
        );
        let line = c.line_of(Addr::new(0x7000));
        c.nack_line(line, Cycle::new(30), false);
        let out = drive(&mut c, 12, 40);
        let reissues: Vec<u64> = out
            .iter()
            .filter(|(_, o)| matches!(o, L2Outcome::NeedLine { .. }))
            .map(|(t, _)| *t)
            .collect();
        assert_eq!(reissues, vec![30]);
    }

    #[test]
    fn fill_evicts_and_reports_dirty_victim() {
        let mut c = L2Ctl::new(
            CoreId(0),
            CacheGeometry::new(256, 2, 128), // 1 set, 2 ways
            5,
            2,
            16,
            4,
        )
        .unwrap();
        c.fill(1, LineState::Modified, Cycle::new(0));
        c.fill(2, LineState::Shared, Cycle::new(0));
        let v = c.fill(3, LineState::Shared, Cycle::new(0)).expect("victim");
        assert_eq!(v.line, 1);
        assert!(v.dirty);
    }

    #[test]
    fn free_slots_and_occupancy() {
        let mut c = l2();
        assert_eq!(c.free_slots(), 16);
        c.allocate(Addr::new(0), EntryKind::Load, false, false, Cycle::new(0));
        assert_eq!(c.free_slots(), 15);
        assert_eq!(c.occupancy(), 1);
    }
}

//! Tokens, completions, events, and locations exposed to the machine model.

use hfs_isa::{Addr, CoreId};
use hfs_sim::stats::StallComponent;
use hfs_sim::Cycle;

/// Identifies one in-flight memory operation submitted to [`crate::MemSystem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemToken {
    core: CoreId,
    id: u64,
}

impl MemToken {
    pub(crate) fn new(core: CoreId, id: u64) -> Self {
        MemToken { core, id }
    }

    /// The core that submitted the operation.
    pub fn core(self) -> CoreId {
        self.core
    }

    pub(crate) fn id(self) -> u64 {
        self.id
    }
}

/// Why a submission was refused this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// All OzQ (outstanding-transaction) entries are occupied.
    OzqFull,
}

/// Where an in-flight operation currently is, for the paper's Figure 7
/// stall attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpLocation {
    /// Gated (dormant) awaiting a synchronization release.
    Dormant,
    /// Waiting for an L2 port or recirculating.
    WaitPort,
    /// In the L2 pipeline.
    InL2,
    /// Line request on the shared bus (arbitration or transfer).
    OnBus,
    /// Line request being serviced by the L3.
    InL3,
    /// Line request being serviced by main memory.
    InDram,
    /// Data returned; L1 fill / completion in progress.
    Filling,
}

impl OpLocation {
    /// The breakdown component this location charges.
    pub fn component(self) -> StallComponent {
        match self {
            OpLocation::Dormant => StallComponent::PreL2,
            OpLocation::WaitPort | OpLocation::InL2 => StallComponent::L2,
            OpLocation::OnBus => StallComponent::Bus,
            OpLocation::InL3 => StallComponent::L3,
            OpLocation::InDram => StallComponent::Mem,
            OpLocation::Filling => StallComponent::PostL2,
        }
    }
}

/// A finished memory operation, delivered to the submitting core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The operation's token.
    pub token: MemToken,
    /// Loaded value (`None` for stores).
    pub value: Option<u64>,
    /// Cycle at which the result is architecturally available.
    pub at: Cycle,
    /// Whether the op was submitted as background (no register waits).
    pub background: bool,
}

/// A small streaming-protocol control message carried on the shared bus
/// (occupancy updates, bulk ACKs). The payload is opaque to this crate;
/// `hfs-core` defines the encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtlPayload {
    /// Message kind discriminator.
    pub kind: u16,
    /// First operand (typically a queue id).
    pub a: u32,
    /// Second operand (typically a count).
    pub b: u64,
}

/// Events reported by the memory system to the machine model each cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEvent {
    /// A store performed (became globally visible) at the L2.
    StorePerformed {
        /// Core that stored.
        core: CoreId,
        /// Store address.
        addr: Addr,
        /// Value written.
        value: u64,
    },
    /// A line was installed in a core's L2 (demand fill or forward).
    LineFilled {
        /// Receiving core.
        core: CoreId,
        /// Base address of the line.
        line_addr: Addr,
        /// True when the fill came from a write-forward push.
        forwarded: bool,
    },
    /// A write-forward push completed end to end.
    ForwardDone {
        /// Producing (sending) core.
        from: CoreId,
        /// Consuming (receiving) core.
        to: CoreId,
        /// Base address of the forwarded line.
        line_addr: Addr,
    },
    /// A control message was delivered.
    CtlDelivered {
        /// Sender.
        from: CoreId,
        /// Receiver.
        to: CoreId,
        /// Opaque payload.
        payload: CtlPayload,
    },
    /// A line left a core's L2 (replacement or coherence invalidation).
    LineEvicted {
        /// Core that lost the line.
        core: CoreId,
        /// Base address of the line.
        line_addr: Addr,
        /// Whether the line was dirty (writeback issued).
        dirty: bool,
    },
    /// A Dragon bus-update broadcast completed: every sharer's copy of
    /// the line absorbed the written word in place (update-based
    /// protocols only).
    UpdateDelivered {
        /// The writing core.
        from: CoreId,
        /// Base address of the updated line.
        line_addr: Addr,
        /// How many other L2s applied the update.
        sharers: u8,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn location_components_match_paper_regions() {
        assert_eq!(OpLocation::Dormant.component(), StallComponent::PreL2);
        assert_eq!(OpLocation::WaitPort.component(), StallComponent::L2);
        assert_eq!(OpLocation::InL2.component(), StallComponent::L2);
        assert_eq!(OpLocation::OnBus.component(), StallComponent::Bus);
        assert_eq!(OpLocation::InL3.component(), StallComponent::L3);
        assert_eq!(OpLocation::InDram.component(), StallComponent::Mem);
        assert_eq!(OpLocation::Filling.component(), StallComponent::PostL2);
    }

    #[test]
    fn token_accessors() {
        let t = MemToken::new(CoreId(1), 42);
        assert_eq!(t.core(), CoreId(1));
        assert_eq!(t.id(), 42);
    }
}

//! The assembled memory system: cores' L1/L2, shared bus, L3, DRAM,
//! coherence glue, and the streaming hooks used by the machine model.

use std::collections::HashSet;

use hfs_check::{Checker, Mutation};
use hfs_isa::{Addr, CoreId};
use hfs_sim::stats::Counter;
use hfs_sim::{ConfigError, Cycle, FnvMap, TimedQueue};
use hfs_trace::{CacheLevel, TraceEvent, Tracer};

use crate::bus::{AddrTxn, Agent, Bus, BusStats, DataTxn};
use crate::cache::LineState;
use crate::config::{MemConfig, Protocol};
use crate::func::FuncMem;
use crate::l1::L1d;
use crate::l2::{EntryKind, L2Ctl, L2Outcome, LineStage, ResolvedWaiter};
use crate::l3::{L3Ready, L3};
use crate::msg::{Completion, CtlPayload, MemEvent, MemToken, OpLocation, RejectReason};

/// Cycles between the L2 returning load data and the value being
/// architecturally available (L1 fill + register writeback; the paper's
/// PostL2 region).
const FILL_LATENCY: u64 = 2;

/// A memory operation submitted by a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOp {
    /// Byte address accessed.
    pub addr: Addr,
    /// `Some(value)` for a store; `None` for a load.
    pub write: Option<u64>,
    /// Background operations complete without any register waiting
    /// (stream-cache shadow accesses keeping occupancy counters fresh).
    pub background: bool,
    /// Gated operations sit dormant in their OzQ slot until
    /// [`MemSystem::release`] is called (SYNCOPTI produce/consume
    /// synchronization). Gated operations bypass the L1.
    pub gated: bool,
    /// Release stores (Itanium `st.rel`) may not access the L2 until all
    /// earlier memory operations from the same core have performed;
    /// software queues use this to order the flag store after the datum.
    pub release: bool,
}

impl MemOp {
    /// A demand load.
    pub fn load(addr: Addr) -> Self {
        MemOp {
            addr,
            write: None,
            background: false,
            gated: false,
            release: false,
        }
    }

    /// A store of `value`.
    pub fn store(addr: Addr, value: u64) -> Self {
        MemOp {
            addr,
            write: Some(value),
            background: false,
            gated: false,
            release: false,
        }
    }

    /// Marks the operation gated (builder style).
    #[must_use]
    pub fn gated(mut self) -> Self {
        self.gated = true;
        self
    }

    /// Marks the operation background (builder style).
    #[must_use]
    pub fn background(mut self) -> Self {
        self.background = true;
        self
    }

    /// Marks a store as a release store (builder style).
    #[must_use]
    pub fn release_store(mut self) -> Self {
        self.release = true;
        self
    }
}

/// Result of submitting an operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Submit {
    /// The load hit the L1; its value is ready at `at`.
    L1Hit {
        /// Loaded value.
        value: u64,
        /// Cycle the value is available.
        at: Cycle,
    },
    /// The operation entered the OzQ; completion arrives later.
    Accepted(MemToken),
    /// The operation could not be accepted this cycle.
    Rejected(RejectReason),
}

#[derive(Debug, Clone, Copy)]
struct TokenMeta {
    gated: bool,
}

/// Aggregate memory-system statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1 load hits (all cores).
    pub l1_hits: u64,
    /// L1 load misses.
    pub l1_misses: u64,
    /// L2 pipe accesses (port bandwidth consumed).
    pub l2_accesses: u64,
    /// L2 port-arbitration losses (recirculations).
    pub l2_port_conflicts: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Bus statistics.
    pub bus: BusStats,
    /// Write-forward pushes completed.
    pub forwards: u64,
    /// Dragon bus-update broadcasts delivered (update protocols only).
    pub updates: u64,
}

/// The complete memory hierarchy of the simulated CMP.
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemConfig,
    func: FuncMem,
    l1s: Vec<L1d>,
    l2s: Vec<L2Ctl>,
    bus: Bus,
    l3: L3,
    busy_lines: HashSet<u64>,
    meta: Vec<FnvMap<TokenMeta>>,
    completions: Vec<TimedQueue<Completion>>,
    events: Vec<MemEvent>,
    /// Per-tick scratch buffers, reused every cycle so the hot loop
    /// allocates nothing in steady state.
    addr_scratch: Vec<AddrTxn>,
    data_scratch: Vec<DataTxn>,
    l3_scratch: Vec<L3Ready>,
    l2_scratch: Vec<L2Outcome>,
    /// In-flight forward pushes: (line, producer core, OzQ entry id).
    forward_track: Vec<(u64, CoreId, u64)>,
    forwards_done: u64,
    /// Dragon bus-update broadcasts delivered.
    updates_done: u64,
    /// Byte range of the streaming (queue) backing store, used to tag
    /// bus requests for the §4.2 application-traffic-priority arbiter.
    streaming_range: Option<(u64, u64)>,
    tracer: Tracer,
    checker: Checker,
    /// Set whenever an externally driven call mutates timed state
    /// (submit accepted, gated release, forward push, control message).
    /// The event-driven scheduler polls-and-clears this to know when the
    /// memory system's `next_event` bound must be recomputed; ticking is
    /// covered separately, so internal progress need not set it.
    touched: bool,
}

impl MemSystem {
    /// Builds the hierarchy described by `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures.
    pub fn new(cfg: MemConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let cores = cfg.cores as usize;
        let mut l1s = Vec::with_capacity(cores);
        let mut l2s = Vec::with_capacity(cores);
        for c in 0..cores {
            l1s.push(L1d::new(cfg.l1d)?);
            let mut l2 = L2Ctl::new(
                CoreId(c as u8),
                cfg.l2,
                cfg.l2_latency_min,
                cfg.l2_ports,
                cfg.ozq_entries,
                cfg.recirc_interval,
            )?;
            l2.set_protocol(cfg.protocol);
            l2s.push(l2);
        }
        Ok(MemSystem {
            bus: Bus::new(cfg.bus, cores),
            l3: L3::new(cfg.l3, cfg.l3_latency, cfg.dram_latency)?,
            func: FuncMem::new(),
            l1s,
            l2s,
            busy_lines: HashSet::new(),
            meta: vec![FnvMap::new(); cores],
            completions: (0..cores).map(|_| TimedQueue::new()).collect(),
            events: Vec::new(),
            addr_scratch: Vec::new(),
            data_scratch: Vec::new(),
            l3_scratch: Vec::new(),
            l2_scratch: Vec::new(),
            forward_track: Vec::new(),
            forwards_done: 0,
            updates_done: 0,
            streaming_range: None,
            tracer: Tracer::disabled(),
            checker: Checker::disabled(),
            touched: false,
            cfg,
        })
    }

    /// Installs a tracer, distributing handles to the bus and every L2.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.bus.set_tracer(tracer.clone());
        for l2 in &mut self.l2s {
            l2.set_tracer(tracer.clone());
        }
        self.tracer = tracer;
    }

    /// Installs a machine checker, distributing handles to the bus and
    /// every L2 and seeding the differential golden memory from the
    /// functional memory's current contents — call after any
    /// pre-initialization writes.
    pub fn set_checker(&mut self, checker: Checker) {
        if checker.is_full() {
            checker.seed_golden(self.func.iter_words());
        }
        checker.set_protocol(self.cfg.protocol.kind());
        self.bus.set_checker(checker.clone());
        for l2 in &mut self.l2s {
            l2.set_checker(checker.clone());
        }
        self.checker = checker;
    }

    /// The active configuration.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Read access to the functional memory.
    pub fn func_mem(&self) -> &FuncMem {
        &self.func
    }

    /// Write access to the functional memory (for pre-initializing data).
    pub fn func_mem_mut(&mut self) -> &mut FuncMem {
        &mut self.func
    }

    /// Submits a memory operation from `core` at cycle `now`.
    pub fn submit(&mut self, core: CoreId, op: MemOp, now: Cycle) -> Submit {
        let c = core.index();
        assert!(c < self.l2s.len(), "core {core} out of range");
        if op.write.is_none() && !op.gated {
            // Demand load: try the L1 first.
            let hit = self.l1s[c].load_hit(op.addr);
            self.tracer.emit(|| TraceEvent::CacheAccess {
                core,
                at: now.as_u64(),
                level: CacheLevel::L1,
                hit,
            });
            if hit {
                let mut value = self.func.read(op.addr);
                if self.checker.fire_once(Mutation::CorruptLoadValue) {
                    value ^= 1;
                }
                self.checker.on_load(now, op.addr.as_u64(), value);
                return Submit::L1Hit {
                    value,
                    at: now + self.cfg.l1_latency,
                };
            }
        }
        if op.write.is_some() && !op.gated {
            // Write-through touch (no allocate).
            self.l1s[c].store_touch(op.addr);
        }
        if self.l2s[c].free_slots() == 0 {
            return Submit::Rejected(RejectReason::OzqFull);
        }
        let kind = match op.write {
            Some(value) => EntryKind::Store {
                value,
                release: op.release,
            },
            None => EntryKind::Load,
        };
        let id = self.l2s[c].allocate(op.addr, kind, op.background, op.gated, now);
        self.meta[c].insert(id, TokenMeta { gated: op.gated });
        // Only an *accepted* submission arms new timed state. Rejections
        // and L1 hits touch nothing with autonomous timing (the refused
        // re-attempt side effects are bulk-replayed at jump time), so
        // flagging them would pin the scheduler awake for nothing.
        self.touched = true;
        Submit::Accepted(MemToken::new(core, id))
    }

    /// Releases a gated operation so it proceeds to the L2.
    /// Returns false if the token is unknown (already completed).
    pub fn release(&mut self, token: MemToken, now: Cycle) -> bool {
        let released = self.l2s[token.core().index()].release(token.id(), now);
        self.touched |= released;
        released
    }

    /// Injects a write-forward push of the line containing `line_addr`
    /// from `from`'s L2 to `to`'s L2. Returns false (and does nothing)
    /// when `from`'s OzQ is full — the caller retries later, which models
    /// forward back-pressure filling the OzQ (§4.4).
    pub fn forward_line(&mut self, from: CoreId, to: CoreId, line_addr: Addr, now: Cycle) -> bool {
        let f = from.index();
        if self.l2s[f].free_slots() == 0 {
            return false;
        }
        self.l2s[f].allocate(line_addr, EntryKind::Forward { to }, true, false, now);
        self.touched = true;
        true
    }

    /// Declares the byte range of the streaming queue backing store so
    /// bus requests can be classified as inter-thread operand traffic
    /// (used only when [`crate::BusConfig::favor_app_traffic`] is set).
    pub fn set_streaming_range(&mut self, base: u64, end: u64) {
        self.streaming_range = Some((base, end));
    }

    fn line_is_streaming(&self, line: u64) -> bool {
        match self.streaming_range {
            Some((base, end)) => {
                let addr = line * self.cfg.l2.line_bytes;
                addr >= base && addr < end
            }
            None => false,
        }
    }

    /// Sends a small streaming control message over the bus address
    /// channel; delivered as [`MemEvent::CtlDelivered`].
    pub fn send_ctl(&mut self, from: CoreId, to: CoreId, payload: CtlPayload) {
        self.bus
            .request_addr(from, AddrTxn::Ctl { from, to, payload });
        self.touched = true;
    }

    /// In-flight operations for `core`.
    pub fn pending_ops(&self, core: CoreId) -> usize {
        self.l2s[core.index()].occupancy()
    }

    /// In-flight *stores* for `core`. Fences use this: the software-queue
    /// sequences need release semantics (Itanium `st.rel`), which order
    /// stores but do not drain outstanding loads — waiting for loads too
    /// would serialize away all memory-level parallelism.
    pub fn pending_stores(&self, core: CoreId) -> usize {
        self.l2s[core.index()].pending_stores()
    }

    /// Free OzQ slots for `core`.
    pub fn free_slots(&self, core: CoreId) -> u32 {
        self.l2s[core.index()].free_slots()
    }

    /// Stall-attribution location of an in-flight operation, or `None`
    /// once it has completed.
    pub fn location(&self, token: MemToken) -> Option<OpLocation> {
        self.l2s[token.core().index()].location(token.id())
    }

    /// Whether the whole hierarchy is quiescent.
    pub fn is_idle(&self) -> bool {
        self.bus.is_idle()
            && self.l3.is_idle()
            && self.l2s.iter().all(|l| l.occupancy() == 0)
            && self.completions.iter().all(TimedQueue::is_empty)
    }

    /// Drains completions ready for `core` at `now`.
    pub fn drain_completions(&mut self, core: CoreId, now: Cycle) -> Vec<Completion> {
        let mut out = Vec::new();
        self.drain_completions_into(core, now, &mut out);
        out
    }

    /// Appends completions ready for `core` at `now` to the caller-owned
    /// `out` buffer (not cleared), avoiding a per-cycle allocation.
    pub fn drain_completions_into(&mut self, core: CoreId, now: Cycle, out: &mut Vec<Completion>) {
        let q = &mut self.completions[core.index()];
        while let Some(c) = q.pop_ready(now) {
            out.push(c);
        }
    }

    /// Whether any completion is ready for `core` at `now` — a cheap
    /// probe so callers that would discard the completions anyway can
    /// skip the drain entirely.
    pub fn has_completions(&self, core: CoreId, now: Cycle) -> bool {
        self.completions[core.index()]
            .next_ready()
            .is_some_and(|ready| ready <= now)
    }

    /// The earliest cycle any undelivered completion for `core` becomes
    /// ready, or `None` when none are pending. The event-driven
    /// scheduler folds this into a sleeping core's wake time so stray
    /// completions (store acks, stream-cache shadow loads) are drained —
    /// and the per-core completion queue emptied — at exactly the cycle
    /// per-cycle simulation would drain them.
    pub fn next_completion(&self, core: CoreId) -> Option<Cycle> {
        self.completions[core.index()].next_ready()
    }

    /// Clears and returns the externally-driven-mutation flag (see the
    /// `touched` field). Event-scheduler use only.
    pub fn take_touched(&mut self) -> bool {
        std::mem::take(&mut self.touched)
    }

    /// Replays the L1 side effects of `n` back-to-back submissions the
    /// OzQ refused: a demand load probes the L1 (and misses — a hit
    /// would have completed instead of being refused) and a store
    /// touches it, before either sees the full OzQ. Fast-forward calls
    /// this so skipped re-attempt cycles leave the L1 LRU state and
    /// hit/miss statistics exactly as per-cycle simulation would.
    pub fn replay_blocked_probes(&mut self, core: CoreId, addr: Addr, n: u64) {
        self.l1s[core.index()].replay_probes(addr, n);
    }

    /// Drains the event stream accumulated since the last call.
    pub fn drain_events(&mut self) -> Vec<MemEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves the event stream accumulated since the last call into `out`
    /// (cleared first); both buffers keep their capacity, so a caller
    /// recycling the same buffer allocates nothing in steady state.
    pub fn take_events(&mut self, out: &mut Vec<MemEvent>) {
        out.clear();
        std::mem::swap(out, &mut self.events);
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> MemStats {
        MemStats {
            l1_hits: self.l1s.iter().map(L1d::hits).sum(),
            l1_misses: self.l1s.iter().map(L1d::misses).sum(),
            l2_accesses: self.l2s.iter().map(L2Ctl::pipe_accesses).sum(),
            l2_port_conflicts: self.l2s.iter().map(L2Ctl::port_conflicts).sum(),
            dram_accesses: self.l3.dram_accesses(),
            bus: self.bus.stats(),
            forwards: self.forwards_done,
            updates: self.updates_done,
        }
    }

    /// The hierarchy's named counters for the unified metrics report:
    /// aggregated L1/L2/L3 hit-miss, L2 port statistics, DRAM accesses,
    /// bus channel activity, and write-forward completions — all sharing
    /// [`hfs_sim::stats::Counter`] with [`MemStats`]'s sources.
    pub fn counters(&self) -> Vec<Counter> {
        fn agg(name: &'static str, value: u64) -> Counter {
            let mut c = Counter::new(name);
            c.add(value);
            c
        }
        let mut out = vec![
            agg("mem.l1_hits", self.l1s.iter().map(L1d::hits).sum()),
            agg("mem.l1_misses", self.l1s.iter().map(L1d::misses).sum()),
            agg("mem.l2_hits", self.l2s.iter().map(L2Ctl::array_hits).sum()),
            agg(
                "mem.l2_misses",
                self.l2s.iter().map(L2Ctl::array_misses).sum(),
            ),
            agg(
                "mem.l2_accesses",
                self.l2s.iter().map(L2Ctl::pipe_accesses).sum(),
            ),
            agg(
                "mem.l2_port_conflicts",
                self.l2s.iter().map(L2Ctl::port_conflicts).sum(),
            ),
        ];
        out.extend(self.l3.counters());
        out.extend(self.bus.counters());
        out.push(agg("mem.forwards", self.forwards_done));
        out
    }

    /// Whether `core`'s L2 currently holds the line containing `addr`.
    pub fn l2_has_line(&self, core: CoreId, addr: Addr) -> bool {
        let l2 = &self.l2s[core.index()];
        l2.probe(l2.line_of(addr)).is_some()
    }

    /// Renders internal state for deadlock diagnostics.
    pub fn debug_state(&self) -> String {
        let mut out = String::new();
        for (i, l2) in self.l2s.iter().enumerate() {
            out.push_str(&format!("L2[{i}]: {}\n", l2.debug_entries()));
        }
        out.push_str(&format!(
            "busy_lines={:?} bus_idle={} l3_idle={}\n",
            self.busy_lines,
            self.bus.is_idle(),
            self.l3.is_idle()
        ));
        out
    }

    /// Advances the hierarchy one cycle.
    pub fn tick(&mut self, now: Cycle) {
        // 1. Bus: deliver address phases (snoops) and data transfers.
        // The scratch buffers are taken out of `self` so the handler
        // calls below can borrow the system mutably; they go back (with
        // their capacity) at the end.
        let mut addrs = std::mem::take(&mut self.addr_scratch);
        let mut datas = std::mem::take(&mut self.data_scratch);
        addrs.clear();
        datas.clear();
        self.bus.tick(now, &mut addrs, &mut datas);
        for &a in &addrs {
            self.handle_addr(a, now);
        }
        for &d in &datas {
            self.handle_data(d, now);
        }
        self.addr_scratch = addrs;
        self.data_scratch = datas;

        // 2. L3: move lookups along; ship serviced lines onto the bus.
        self.l3.tick(now);
        let mut serviced = std::mem::take(&mut self.l3_scratch);
        self.l3.take_ready(&mut serviced);
        for ready in &serviced {
            self.tracer.emit(|| TraceEvent::CacheAccess {
                core: ready.req.requester,
                at: now.as_u64(),
                level: CacheLevel::L3,
                hit: !ready.from_dram,
            });
            self.l2s[ready.req.requester.index()].line_stage(ready.req.line, LineStage::Incoming);
            self.bus.request_data(
                Agent::L3,
                self.cfg.l2.line_bytes,
                DataTxn::FillL2 {
                    line: ready.req.line,
                    dest: ready.req.requester,
                    state: ready.req.fill,
                },
            );
        }
        self.l3_scratch = serviced;

        // 3. L2s: ports, pipe resolutions, line-request (re)issues.
        let mut outcomes = std::mem::take(&mut self.l2_scratch);
        for c in 0..self.l2s.len() {
            outcomes.clear();
            self.l2s[c].tick(now, &mut outcomes);
            for &o in &outcomes {
                self.handle_l2_outcome(CoreId(c as u8), o, now);
            }
        }
        self.l2_scratch = outcomes;

        // 4. Track DRAM progression for stall attribution: walk the DRAM
        // residents directly — `line_stage` ignores lines with no pending
        // request, so this marks exactly the busy lines the old per-line
        // sweep did, in O(DRAM occupancy) instead of O(lines × cores).
        for (line, core) in self.l3.in_dram() {
            self.l2s[core.index()].line_stage(line, LineStage::InDram);
        }

        // 5. Machine-check audits (no-ops when checking is off).
        if self.checker.is_enabled() {
            for (c, l2) in self.l2s.iter().enumerate() {
                self.checker
                    .ozq_audit(now, CoreId(c as u8), l2.occupancy(), l2.capacity());
            }
            self.checker.audit_outstanding(now);
        }
    }

    /// Conservative lower bound on the next cycle at which the hierarchy
    /// changes state on its own: bus deliveries/grants, L3 pipeline
    /// heads, L2 port/pipe/reissue timers, and undelivered completions.
    /// `None` when fully quiescent (nothing will ever happen without new
    /// submissions).
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut best: Option<Cycle> = None;
        let mut fold = |t: Option<Cycle>| {
            if let Some(t) = t {
                best = Some(best.map_or(t, |b| b.min(t)));
            }
        };
        fold(self.bus.next_event(now));
        fold(self.l3.next_event(now));
        for l2 in &self.l2s {
            fold(l2.next_event(now));
        }
        for q in &self.completions {
            fold(q.next_ready().map(|t| t.max(now.next())));
        }
        if !self.events.is_empty() {
            // Undrained events must reach the backends next cycle.
            fold(Some(now.next()));
        }
        best
    }

    fn handle_l2_outcome(&mut self, core: CoreId, o: L2Outcome, now: Cycle) {
        let c = core.index();
        match &o {
            L2Outcome::LoadHit { addr, .. } | L2Outcome::StorePerform { addr, .. } => {
                self.tracer.emit(|| TraceEvent::CacheAccess {
                    core,
                    at: now.as_u64(),
                    level: CacheLevel::L2,
                    hit: true,
                });
                if self.checker.is_enabled() {
                    let line = self.l2s[c].line_of(*addr);
                    self.checker.on_l2_hit(now, core, line);
                }
            }
            L2Outcome::NeedLine { .. } => {
                self.tracer.emit(|| TraceEvent::CacheAccess {
                    core,
                    at: now.as_u64(),
                    level: CacheLevel::L2,
                    hit: false,
                });
            }
            _ => {}
        }
        match o {
            L2Outcome::LoadHit {
                id,
                addr,
                background,
            } => {
                let mut value = self.func.read(addr);
                if self.checker.fire_once(Mutation::CorruptLoadValue) {
                    value ^= 1;
                }
                self.checker.on_load(now, addr.as_u64(), value);
                let meta = self.meta[c]
                    .remove(id)
                    .unwrap_or(TokenMeta { gated: false });
                // Gated (streaming) loads bypass the L1 and its fill
                // latency; their data goes straight to the consumer.
                let at = if meta.gated {
                    now
                } else {
                    self.l1s[c].fill(addr);
                    now + FILL_LATENCY
                };
                self.completions[c].push(
                    at,
                    Completion {
                        token: MemToken::new(core, id),
                        value: Some(value),
                        at,
                        background,
                    },
                );
            }
            L2Outcome::StorePerform {
                id,
                addr,
                value,
                background,
            } => {
                // Fault injection: the timing model writes a wrong value
                // while the architectural event (and the checker's
                // golden) keep the original.
                let mut stored = value;
                if self.checker.fire_once(Mutation::CorruptStoreValue) {
                    stored ^= 1;
                }
                self.func.write(addr, stored);
                self.checker.on_store(now, addr.as_u64(), value);
                self.meta[c].remove(id);
                self.events
                    .push(MemEvent::StorePerformed { core, addr, value });
                self.completions[c].push(
                    now,
                    Completion {
                        token: MemToken::new(core, id),
                        value: None,
                        at: now,
                        background,
                    },
                );
            }
            L2Outcome::NeedLine {
                line,
                exclusive,
                have_shared,
            } => {
                let streaming = self.line_is_streaming(line);
                let txn = if exclusive && have_shared {
                    // Dragon never invalidates: a store to a shared line
                    // broadcasts a bus-update instead of upgrading.
                    if self.cfg.protocol == Protocol::Dragon {
                        AddrTxn::Upd {
                            line,
                            requester: core,
                            streaming,
                        }
                    } else {
                        AddrTxn::Upgr {
                            line,
                            requester: core,
                            streaming,
                        }
                    }
                } else if exclusive {
                    // Dragon write misses fetch with a plain read; the
                    // store then updates (or upgrades silently from EC)
                    // once the fill lands.
                    if self.cfg.protocol == Protocol::Dragon {
                        AddrTxn::Rd {
                            line,
                            requester: core,
                            streaming,
                        }
                    } else {
                        AddrTxn::RdX {
                            line,
                            requester: core,
                            streaming,
                        }
                    }
                } else {
                    AddrTxn::Rd {
                        line,
                        requester: core,
                        streaming,
                    }
                };
                self.l2s[c].line_stage(line, LineStage::OnBus);
                self.bus.request_addr(core, txn);
            }
            L2Outcome::ForwardReady { id, line, to } => {
                if self.busy_lines.contains(&line) {
                    // The destination is already fetching the line by
                    // demand; drop the push.
                    self.l2s[c].forward_complete(id, u64::MAX); // remove entry only
                    return;
                }
                self.busy_lines.insert(line);
                self.bus.request_data(
                    Agent::Core(core),
                    self.cfg.l2.line_bytes,
                    DataTxn::ForwardLine {
                        line,
                        from: core,
                        to,
                    },
                );
                // Remember which entry to complete on delivery.
                self.meta[c].insert(id, TokenMeta { gated: false });
                self.pending_forwards_insert(line, core, id);
            }
            L2Outcome::ForwardAbort { id } => {
                self.meta[c].remove(id);
            }
        }
    }

    fn pending_forwards_insert(&mut self, line: u64, core: CoreId, id: u64) {
        // Stored compactly in the meta map keyed by a synthetic slot: the
        // forward entry id itself is enough because forward_complete takes
        // the id. We track (line -> (core,id)) in a small vec.
        self.forward_track.push((line, core, id));
    }

    fn handle_addr(&mut self, txn: AddrTxn, now: Cycle) {
        let backoff = 2 * self.cfg.bus.pipeline_stages * self.cfg.bus.clock_divider;
        match txn {
            AddrTxn::Ctl { from, to, payload } => {
                self.events
                    .push(MemEvent::CtlDelivered { from, to, payload });
            }
            AddrTxn::Rd {
                line, requester, ..
            } => {
                if self.busy_lines.contains(&line) {
                    self.l2s[requester.index()].nack_line(line, now + backoff, false);
                    return;
                }
                self.busy_lines.insert(line);
                self.checker.on_addr_request(now, requester, line);
                let mut supplied = false;
                let mut other_holder = false;
                for c in 0..self.l2s.len() {
                    if c == requester.index() {
                        continue;
                    }
                    if self.l2s[c].probe(line).is_some() {
                        other_holder = true;
                    }
                    if !supplied && self.l2s[c].snoop_rd(line) {
                        supplied = true;
                        // Cache-to-cache transfer; L3 shadows a clean copy.
                        self.l3.install_clean(line);
                        self.l2s[requester.index()].line_stage(line, LineStage::Incoming);
                        self.bus.request_data(
                            Agent::Core(CoreId(c as u8)),
                            self.cfg.l2.line_bytes,
                            DataTxn::FillL2 {
                                line,
                                dest: requester,
                                state: LineState::Shared,
                            },
                        );
                    }
                }
                if !supplied {
                    // MESI/Dragon: a fill no other L2 holds installs
                    // Exclusive (E / EC), enabling the silent first-write
                    // upgrade. MSI always fills Shared.
                    let mut fill = if self.cfg.protocol != Protocol::Msi && !other_holder {
                        LineState::Exclusive
                    } else {
                        LineState::Shared
                    };
                    // Fault injection: claim exclusivity despite a
                    // surviving sharer; the install census must object.
                    if self.cfg.protocol != Protocol::Msi
                        && other_holder
                        && self.checker.fire_once(Mutation::GrantExclusiveWithSharers)
                    {
                        fill = LineState::Exclusive;
                    }
                    self.l2s[requester.index()].line_stage(line, LineStage::InL3);
                    self.l3.request(
                        crate::l3::L3Req {
                            line,
                            requester,
                            fill,
                        },
                        now,
                    );
                }
            }
            AddrTxn::RdX {
                line, requester, ..
            } => {
                if self.busy_lines.contains(&line) {
                    self.l2s[requester.index()].nack_line(line, now + backoff, true);
                    return;
                }
                self.busy_lines.insert(line);
                self.checker.on_addr_request(now, requester, line);
                let mut supplied = false;
                for c in 0..self.l2s.len() {
                    if c == requester.index() {
                        continue;
                    }
                    // Fault injection: skip one snoop invalidation,
                    // leaving a stale copy behind the new owner.
                    if self.l2s[c].probe(line).is_some()
                        && self.checker.fire_once(Mutation::SkipSnoopInvalidate)
                    {
                        continue;
                    }
                    let (had, had_m) = self.l2s[c].snoop_inv(line);
                    if had {
                        self.checker.on_invalidate(now, CoreId(c as u8), line);
                        let line_addr = Addr::new(line * self.cfg.l2.line_bytes);
                        self.l1s[c].invalidate_span(line_addr, self.cfg.l2.line_bytes);
                        self.events.push(MemEvent::LineEvicted {
                            core: CoreId(c as u8),
                            line_addr,
                            dirty: had_m,
                        });
                    }
                    if had_m {
                        supplied = true;
                        self.l3.install_clean(line);
                        self.l2s[requester.index()].line_stage(line, LineStage::Incoming);
                        self.bus.request_data(
                            Agent::Core(CoreId(c as u8)),
                            self.cfg.l2.line_bytes,
                            DataTxn::FillL2 {
                                line,
                                dest: requester,
                                state: LineState::Modified,
                            },
                        );
                    }
                }
                if !supplied {
                    self.l2s[requester.index()].line_stage(line, LineStage::InL3);
                    self.l3.request(
                        crate::l3::L3Req {
                            line,
                            requester,
                            fill: LineState::Modified,
                        },
                        now,
                    );
                }
            }
            AddrTxn::Upgr {
                line, requester, ..
            } => {
                if self.busy_lines.contains(&line) {
                    self.l2s[requester.index()].nack_line(line, now + backoff, true);
                    return;
                }
                let r = requester.index();
                if self.l2s[r].probe(line) == Some(LineState::Shared) {
                    for c in 0..self.l2s.len() {
                        if c == r {
                            continue;
                        }
                        if self.l2s[c].probe(line).is_some()
                            && self.checker.fire_once(Mutation::SkipSnoopInvalidate)
                        {
                            continue;
                        }
                        let (had, _) = self.l2s[c].snoop_inv(line);
                        if had {
                            self.checker.on_invalidate(now, CoreId(c as u8), line);
                            let line_addr = Addr::new(line * self.cfg.l2.line_bytes);
                            self.l1s[c].invalidate_span(line_addr, self.cfg.l2.line_bytes);
                            self.events.push(MemEvent::LineEvicted {
                                core: CoreId(c as u8),
                                line_addr,
                                dirty: false,
                            });
                        }
                    }
                    self.l2s[r].grant_upgrade(line, now);
                    self.audit_line_states(line, now);
                    self.resolve_waiters(requester, line, now);
                } else {
                    // Our copy vanished while the upgrade was in flight:
                    // reissue as a full exclusive fetch.
                    self.l2s[r].nack_line(line, now, true);
                }
            }
            AddrTxn::Upd {
                line, requester, ..
            } => {
                // Dragon bus-update: a single address/snoop-phase
                // broadcast. Every sharer patches its copy in place; the
                // writer becomes the SM owner (EM with no sharers left).
                // No data-channel transfer and no split-transaction
                // response follow.
                if self.busy_lines.contains(&line) {
                    self.l2s[requester.index()].nack_line(line, now + backoff, true);
                    return;
                }
                let r = requester.index();
                if !matches!(
                    self.l2s[r].probe(line),
                    Some(LineState::Shared) | Some(LineState::SharedModified)
                ) {
                    // Our copy vanished while the update was in flight:
                    // refetch (the reissue sees have_shared = false and
                    // maps back to a plain read under Dragon).
                    self.l2s[r].nack_line(line, now, true);
                    return;
                }
                let mut holders = 0u32;
                let mut updated_cores: Vec<usize> = Vec::new();
                for c in 0..self.l2s.len() {
                    if c == r || self.l2s[c].probe(line).is_none() {
                        continue;
                    }
                    // Fault injection: hide one sharer from the
                    // broadcast entirely — counts agree, but its copy
                    // goes silently stale.
                    if self.checker.fire_once(Mutation::HideDragonSharer) {
                        continue;
                    }
                    holders += 1;
                    // Fault injection: count the sharer but skip the
                    // delivery — the update census comes up short.
                    if self.checker.fire_once(Mutation::SkipDragonUpdate) {
                        continue;
                    }
                    self.l2s[c].snoop_upd(line);
                    // The sharer's L1 span is stale at word granularity;
                    // invalidate it so later loads refetch through L2.
                    let line_addr = Addr::new(line * self.cfg.l2.line_bytes);
                    self.l1s[c].invalidate_span(line_addr, self.cfg.l2.line_bytes);
                    updated_cores.push(c);
                }
                let updated = updated_cores.len() as u32;
                // Bump the broadcast version first, then mark each
                // reached sharer current at the *new* version.
                self.checker
                    .on_bus_update(now, requester, line, holders, updated);
                for &c in &updated_cores {
                    self.checker.on_update_applied(CoreId(c as u8), line);
                }
                self.updates_done += 1;
                self.events.push(MemEvent::UpdateDelivered {
                    from: requester,
                    line_addr: Addr::new(line * self.cfg.l2.line_bytes),
                    sharers: updated as u8,
                });
                self.l2s[r].grant_update(line, holders > 0, now);
                self.audit_line_states(line, now);
                self.resolve_waiters(requester, line, now);
            }
        }
    }

    fn handle_data(&mut self, txn: DataTxn, now: Cycle) {
        match txn {
            DataTxn::FillL2 { line, dest, state } => {
                self.busy_lines.remove(&line);
                self.install_fill(dest, line, state, false, now);
            }
            DataTxn::WbL3 { line, .. } => {
                self.l3.writeback(line);
            }
            DataTxn::ForwardLine { line, from, to } => {
                self.busy_lines.remove(&line);
                // Complete the producer-side forward entry.
                if let Some(pos) = self
                    .forward_track
                    .iter()
                    .position(|(l, c, _)| *l == line && *c == from)
                {
                    let (_, _, id) = self.forward_track.remove(pos);
                    self.l2s[from.index()].forward_complete(id, line);
                    self.meta[from.index()].remove(id);
                }
                let line_addr = Addr::new(line * self.cfg.l2.line_bytes);
                self.l1s[from.index()].invalidate_span(line_addr, self.cfg.l2.line_bytes);
                self.install_fill(to, line, LineState::Modified, true, now);
                self.forwards_done += 1;
                self.tracer.emit(|| TraceEvent::Forward {
                    at: now.as_u64(),
                    line,
                });
                self.events.push(MemEvent::ForwardDone {
                    from,
                    to,
                    line_addr,
                });
            }
        }
    }

    fn install_fill(
        &mut self,
        dest: CoreId,
        line: u64,
        state: LineState,
        forwarded: bool,
        now: Cycle,
    ) {
        let d = dest.index();
        let victim = self.l2s[d].fill(line, state, now);
        if let Some(v) = victim {
            let victim_addr = Addr::new(v.line * self.cfg.l2.line_bytes);
            self.l1s[d].invalidate_span(victim_addr, self.cfg.l2.line_bytes);
            if v.dirty {
                self.bus.request_data(
                    Agent::Core(dest),
                    self.cfg.l2.line_bytes,
                    DataTxn::WbL3 {
                        line: v.line,
                        from: dest,
                    },
                );
            }
            self.events.push(MemEvent::LineEvicted {
                core: dest,
                line_addr: victim_addr,
                dirty: v.dirty,
            });
        }
        self.events.push(MemEvent::LineFilled {
            core: dest,
            line_addr: Addr::new(line * self.cfg.l2.line_bytes),
            forwarded,
        });
        self.checker.on_line_filled(dest, line);
        if !forwarded {
            // Forward pushes are unsolicited; everything else answers a
            // registered split-transaction request.
            self.checker.on_addr_response(now, dest, line);
        }
        self.audit_line_states(line, now);
        self.resolve_waiters(dest, line, now);
    }

    /// Cross-L2 coherence census for `line`, reported to the machine
    /// checker, which applies the active protocol's invariant table.
    fn audit_line_states(&self, line: u64, now: Cycle) {
        if !self.checker.is_enabled() {
            return;
        }
        let (mut modified, mut exclusive, mut shared, mut shared_modified) =
            (0u32, 0u32, 0u32, 0u32);
        for l2 in &self.l2s {
            match l2.probe(line) {
                Some(LineState::Modified) => modified += 1,
                Some(LineState::Exclusive) => exclusive += 1,
                Some(LineState::Shared) => shared += 1,
                Some(LineState::SharedModified) => shared_modified += 1,
                None => {}
            }
        }
        self.checker
            .coherence_states(now, line, modified, exclusive, shared, shared_modified);
    }

    /// Satisfies operations that were waiting on `line` at fill/upgrade
    /// time (MSHR refill semantics): stores perform immediately and loads
    /// sample their value, before any later snoop can steal the line.
    /// Operations resolve in OzQ (program) order so same-core
    /// store-then-load sequences observe their own writes.
    fn resolve_waiters(&mut self, core: CoreId, line: u64, now: Cycle) {
        let c = core.index();
        let waiters: Vec<ResolvedWaiter> = self.l2s[c].drain_line_waiters(line, now);
        for w in waiters {
            match w.kind {
                EntryKind::Store { value, .. } => {
                    let mut stored = value;
                    if self.checker.fire_once(Mutation::CorruptStoreValue) {
                        stored ^= 1;
                    }
                    self.func.write(w.addr, stored);
                    self.checker.on_store(now, w.addr.as_u64(), value);
                    self.meta[c].remove(w.id);
                    self.events.push(MemEvent::StorePerformed {
                        core,
                        addr: w.addr,
                        value,
                    });
                    self.completions[c].push(
                        now,
                        Completion {
                            token: MemToken::new(core, w.id),
                            value: None,
                            at: now,
                            background: w.background,
                        },
                    );
                }
                EntryKind::Load => {
                    let mut value = self.func.read(w.addr);
                    if self.checker.fire_once(Mutation::CorruptLoadValue) {
                        value ^= 1;
                    }
                    self.checker.on_load(now, w.addr.as_u64(), value);
                    let meta = self.meta[c]
                        .remove(w.id)
                        .unwrap_or(TokenMeta { gated: false });
                    let at = if meta.gated {
                        now
                    } else {
                        self.l1s[c].fill(w.addr);
                        now + FILL_LATENCY
                    };
                    self.completions[c].push(
                        at,
                        Completion {
                            token: MemToken::new(core, w.id),
                            value: Some(value),
                            at,
                            background: w.background,
                        },
                    );
                }
                EntryKind::Forward { .. } => unreachable!("forwards never wait on lines"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> MemSystem {
        MemSystem::new(MemConfig::itanium2_cmp()).unwrap()
    }

    /// Runs the system until the given token completes, returning
    /// (completion cycle, value).
    fn run_until_complete(
        m: &mut MemSystem,
        core: CoreId,
        token: MemToken,
        start: u64,
        limit: u64,
    ) -> (u64, Option<u64>) {
        for t in start..start + limit {
            let now = Cycle::new(t);
            m.tick(now);
            for c in m.drain_completions(core, now) {
                if c.token == token {
                    return (t, c.value);
                }
            }
        }
        panic!("operation did not complete within {limit} cycles");
    }

    #[test]
    fn cold_load_misses_to_dram_and_returns_value() {
        let mut m = sys();
        let a = Addr::new(0x10000);
        m.func_mem_mut().write(a, 1234);
        let tok = match m.submit(CoreId(0), MemOp::load(a), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            other => panic!("expected acceptance, got {other:?}"),
        };
        let (t, v) = run_until_complete(&mut m, CoreId(0), tok, 0, 400);
        assert_eq!(v, Some(1234));
        // L2 miss -> bus -> L3 miss -> DRAM (141) -> back: > 160 cycles.
        assert!(t > 160, "completed unrealistically fast at {t}");
        assert_eq!(m.stats().dram_accesses, 1);
    }

    #[test]
    fn second_load_hits_l1() {
        let mut m = sys();
        let a = Addr::new(0x2000);
        let tok = match m.submit(CoreId(0), MemOp::load(a), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (t, _) = run_until_complete(&mut m, CoreId(0), tok, 0, 400);
        match m.submit(CoreId(0), MemOp::load(a), Cycle::new(t + 1)) {
            Submit::L1Hit { at, .. } => assert_eq!(at, Cycle::new(t + 2)),
            other => panic!("expected L1 hit, got {other:?}"),
        }
    }

    #[test]
    fn store_performs_and_updates_functional_memory() {
        let mut m = sys();
        let a = Addr::new(0x3000);
        let tok = match m.submit(CoreId(0), MemOp::store(a, 77), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let _ = run_until_complete(&mut m, CoreId(0), tok, 0, 400);
        assert_eq!(m.func_mem().read(a), 77);
        let evs: Vec<_> = m.drain_events();
        assert!(evs
            .iter()
            .any(|e| matches!(e, MemEvent::StorePerformed { value: 77, .. })));
    }

    #[test]
    fn producer_store_invalidates_consumer_copy() {
        let mut m = sys();
        let a = Addr::new(0x4000);
        // Consumer (core 1) reads the line first.
        let t1 = match m.submit(CoreId(1), MemOp::load(a), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (end, _) = run_until_complete(&mut m, CoreId(1), t1, 0, 400);
        assert!(m.l2_has_line(CoreId(1), a));
        m.drain_events();
        // Producer (core 0) stores: must invalidate consumer's copy.
        let t0 = match m.submit(CoreId(0), MemOp::store(a, 5), Cycle::new(end + 1)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let _ = run_until_complete(&mut m, CoreId(0), t0, end + 1, 600);
        assert!(!m.l2_has_line(CoreId(1), a));
        // And the consumer's next load must see the new value.
        let t2 = match m.submit(CoreId(1), MemOp::load(a), Cycle::new(end + 300)) {
            Submit::Accepted(t) => t,
            Submit::L1Hit { .. } => panic!("consumer copy should be invalid"),
            _ => panic!(),
        };
        let (_, v) = run_until_complete(&mut m, CoreId(1), t2, end + 300, 600);
        assert_eq!(v, Some(5));
    }

    #[test]
    fn modified_line_supplied_cache_to_cache() {
        let mut m = sys();
        let a = Addr::new(0x5000);
        let t0 = match m.submit(CoreId(0), MemOp::store(a, 9), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (end, _) = run_until_complete(&mut m, CoreId(0), t0, 0, 400);
        let drams = m.stats().dram_accesses;
        // Consumer load: owner must supply without a fresh DRAM trip.
        let t1 = match m.submit(CoreId(1), MemOp::load(a), Cycle::new(end + 1)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (t, v) = run_until_complete(&mut m, CoreId(1), t1, end + 1, 400);
        assert_eq!(v, Some(9));
        assert_eq!(m.stats().dram_accesses, drams, "no extra DRAM access");
        // Cache-to-cache is much faster than DRAM.
        assert!(t - end < 100, "c2c transfer took {} cycles", t - end);
    }

    #[test]
    fn gated_op_waits_for_release() {
        let mut m = sys();
        let a = Addr::new(0x6000);
        let tok = match m.submit(CoreId(0), MemOp::store(a, 3).gated(), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        for t in 0..50 {
            m.tick(Cycle::new(t));
            assert!(m.drain_completions(CoreId(0), Cycle::new(t)).is_empty());
        }
        assert_eq!(m.location(tok), Some(OpLocation::Dormant));
        assert!(m.release(tok, Cycle::new(50)));
        let (_, _) = run_until_complete(&mut m, CoreId(0), tok, 50, 400);
        assert_eq!(m.func_mem().read(a), 3);
    }

    #[test]
    fn ozq_fills_up_and_rejects() {
        let mut m = sys();
        let mut accepted = 0;
        loop {
            match m.submit(
                CoreId(0),
                MemOp::load(Addr::new(0x100000 + accepted * 0x1000)),
                Cycle::new(0),
            ) {
                Submit::Accepted(_) => accepted += 1,
                Submit::Rejected(RejectReason::OzqFull) => break,
                Submit::L1Hit { .. } => panic!("cold loads cannot hit"),
            }
            assert!(accepted <= 16, "OzQ should cap at 16");
        }
        assert_eq!(accepted, 16);
    }

    #[test]
    fn forward_moves_line_ownership() {
        let mut m = sys();
        let a = Addr::new(0x7000);
        // Producer dirties the line.
        let t0 = match m.submit(CoreId(0), MemOp::store(a, 11), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (end, _) = run_until_complete(&mut m, CoreId(0), t0, 0, 400);
        m.drain_events();
        assert!(m.forward_line(CoreId(0), CoreId(1), a, Cycle::new(end + 1)));
        let mut done = false;
        for t in end + 1..end + 200 {
            m.tick(Cycle::new(t));
            for e in m.drain_events() {
                if let MemEvent::ForwardDone { from, to, .. } = e {
                    assert_eq!((from, to), (CoreId(0), CoreId(1)));
                    done = true;
                }
            }
            if done {
                break;
            }
        }
        assert!(done, "forward never completed");
        assert!(!m.l2_has_line(CoreId(0), a), "producer keeps ownership");
        assert!(m.l2_has_line(CoreId(1), a), "consumer should own the line");
        assert_eq!(m.stats().forwards, 1);
        // Consumer load now hits its own L2 (no bus transaction).
        let t1 = match m.submit(CoreId(1), MemOp::load(a), Cycle::new(end + 200)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (t, v) = run_until_complete(&mut m, CoreId(1), t1, end + 200, 100);
        assert_eq!(v, Some(11));
        assert!(t - (end + 200) < 20, "local L2 hit expected");
    }

    #[test]
    fn ctl_message_is_delivered() {
        let mut m = sys();
        m.send_ctl(
            CoreId(1),
            CoreId(0),
            CtlPayload {
                kind: 2,
                a: 7,
                b: 16,
            },
        );
        let mut seen = false;
        for t in 0..20 {
            m.tick(Cycle::new(t));
            for e in m.drain_events() {
                if let MemEvent::CtlDelivered { payload, .. } = e {
                    assert_eq!(payload.b, 16);
                    seen = true;
                }
            }
        }
        assert!(seen);
    }

    #[test]
    fn is_idle_lifecycle() {
        let mut m = sys();
        assert!(m.is_idle());
        let _ = m.submit(CoreId(0), MemOp::load(Addr::new(0x8000)), Cycle::new(0));
        assert!(!m.is_idle());
        for t in 0..500 {
            let now = Cycle::new(t);
            m.tick(now);
            let _ = m.drain_completions(CoreId(0), now);
        }
        assert!(m.is_idle());
    }

    #[test]
    fn release_store_waits_for_earlier_operations() {
        let mut m = sys();
        // A slow load (cold miss to DRAM) followed by a release store to
        // a different line: the store must not perform before the load.
        let load_tok = match m.submit(CoreId(0), MemOp::load(Addr::new(0x40000)), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let rel_tok = match m.submit(
            CoreId(0),
            MemOp::store(Addr::new(0x50000), 1).release_store(),
            Cycle::new(0),
        ) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let mut load_done = None;
        let mut store_done = None;
        for t in 0..2000 {
            let now = Cycle::new(t);
            m.tick(now);
            for c in m.drain_completions(CoreId(0), now) {
                if c.token == load_tok {
                    load_done = Some(t);
                }
                if c.token == rel_tok {
                    store_done = Some(t);
                }
            }
            if load_done.is_some() && store_done.is_some() {
                break;
            }
        }
        let (l, s) = (load_done.expect("load"), store_done.expect("store"));
        assert!(
            s >= l,
            "release store performed at {s}, before the earlier load at {l}"
        );
    }

    #[test]
    fn plain_store_can_pass_a_slow_load() {
        let mut m = sys();
        let load_tok = match m.submit(CoreId(0), MemOp::load(Addr::new(0x60000)), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        // Warm the store's line first so the store is a fast L2 hit...
        // it is cold too, but to separate lines both go to DRAM; the
        // store (no release) may complete in any order. Just assert both
        // complete and the machine stays consistent.
        let st_tok = match m.submit(
            CoreId(0),
            MemOp::store(Addr::new(0x70000), 2),
            Cycle::new(0),
        ) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let mut done = 0;
        for t in 0..2000 {
            let now = Cycle::new(t);
            m.tick(now);
            for c in m.drain_completions(CoreId(0), now) {
                if c.token == load_tok || c.token == st_tok {
                    done += 1;
                }
            }
            if done == 2 {
                break;
            }
        }
        assert_eq!(done, 2);
        assert_eq!(m.func_mem().read(Addr::new(0x70000)), 2);
    }

    #[test]
    fn concurrent_same_line_requests_serialize() {
        let mut m = sys();
        let a = Addr::new(0x9000);
        let t0 = match m.submit(CoreId(0), MemOp::store(a, 1), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let t1 = match m.submit(CoreId(1), MemOp::store(a + 8, 2), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let mut done = [false, false];
        for t in 0..2000 {
            let now = Cycle::new(t);
            m.tick(now);
            for c in m.drain_completions(CoreId(0), now) {
                if c.token == t0 {
                    done[0] = true;
                }
            }
            for c in m.drain_completions(CoreId(1), now) {
                if c.token == t1 {
                    done[1] = true;
                }
            }
            if done == [true, true] {
                break;
            }
        }
        assert_eq!(done, [true, true], "conflicting stores must both finish");
        assert_eq!(m.func_mem().read(a), 1);
        assert_eq!(m.func_mem().read(a + 8), 2);
        // Exactly one core may own the line at the end.
        let owners =
            u32::from(m.l2_has_line(CoreId(0), a)) + u32::from(m.l2_has_line(CoreId(1), a));
        assert_eq!(owners, 1);
    }

    // --- snoop-supply dirty-data regressions (machine-check audited) ---

    fn checked_sys() -> (MemSystem, Checker) {
        let mut m = sys();
        let checker = Checker::with_level(hfs_check::CheckLevel::Full);
        m.set_checker(checker.clone());
        (m, checker)
    }

    fn assert_clean(checker: &Checker) {
        assert_eq!(
            checker.violation_count(),
            0,
            "machine-check violations: {:?}",
            checker.violations()
        );
    }

    /// `snoop_rd` downgrades a dirty owner to Shared when it supplies the
    /// line cache-to-cache. The owner must then *re-upgrade* before its
    /// next store — a model that left the stale Modified tag in place
    /// would let two incoherent writers coexist. The attached checker's
    /// MSI census audits every intermediate state, and the differential
    /// data check replays each load against the golden memory.
    #[test]
    fn snoop_supply_downgrade_forces_reupgrade() {
        let (mut m, checker) = checked_sys();
        let a = Addr::new(0xA000);
        let t0 = match m.submit(CoreId(0), MemOp::store(a, 1), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (end, _) = run_until_complete(&mut m, CoreId(0), t0, 0, 600);
        // Dirty snoop-supply: core 1's load downgrades core 0 to Shared.
        let t1 = match m.submit(CoreId(1), MemOp::load(a), Cycle::new(end + 1)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (end, v) = run_until_complete(&mut m, CoreId(1), t1, end + 1, 600);
        assert_eq!(v, Some(1), "supplied data must be the dirty value");
        assert!(m.l2_has_line(CoreId(0), a) && m.l2_has_line(CoreId(1), a));
        // The downgraded owner stores again: must upgrade and invalidate
        // the other Shared copy, not silently write as if still Modified.
        let t2 = match m.submit(CoreId(0), MemOp::store(a, 2), Cycle::new(end + 1)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (end, _) = run_until_complete(&mut m, CoreId(0), t2, end + 1, 600);
        assert!(
            !m.l2_has_line(CoreId(1), a),
            "Shared copy must be invalidated"
        );
        let t3 = match m.submit(CoreId(1), MemOp::load(a), Cycle::new(end + 1)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (_, v) = run_until_complete(&mut m, CoreId(1), t3, end + 1, 600);
        assert_eq!(v, Some(2));
        assert_clean(&checker);
    }

    /// The dirty snoop-supply's write-back must be *visible* toward the
    /// outer hierarchy: when the owner supplies a Modified line, the L3
    /// installs a clean shadow copy, so a later sharer is served on-chip
    /// rather than reading a stale word from DRAM.
    #[test]
    fn snoop_supply_writes_back_into_l3() {
        let mut cfg = MemConfig::itanium2_cmp();
        cfg.cores = 4;
        let mut m = MemSystem::new(cfg).unwrap();
        let checker = Checker::with_level(hfs_check::CheckLevel::Full);
        m.set_checker(checker.clone());
        let a = Addr::new(0xB000);
        let t0 = match m.submit(CoreId(0), MemOp::store(a, 7), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (end, _) = run_until_complete(&mut m, CoreId(0), t0, 0, 600);
        let t1 = match m.submit(CoreId(1), MemOp::load(a), Cycle::new(end + 1)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (end, v) = run_until_complete(&mut m, CoreId(1), t1, end + 1, 600);
        assert_eq!(v, Some(7));
        let drams = m.stats().dram_accesses;
        // A third sharer: the line now lives in two L2s and (clean) in
        // the L3. No path may need a fresh DRAM trip.
        let t2 = match m.submit(CoreId(2), MemOp::load(a), Cycle::new(end + 1)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (_, v) = run_until_complete(&mut m, CoreId(2), t2, end + 1, 600);
        assert_eq!(v, Some(7));
        assert_eq!(m.stats().dram_accesses, drams, "write-back must be on-chip");
        assert_clean(&checker);
    }

    /// `forward_complete` retires the producer-side OzQ entry when a
    /// write-forward lands in the consumer's L2; the per-cycle OzQ
    /// conservation audit proves no slot leaks, and the consumer's next
    /// load of the line hits locally with the forwarded data.
    #[test]
    fn forward_complete_retires_ozq_and_delivers_data() {
        let (mut m, checker) = checked_sys();
        let a = Addr::new(0xC000);
        let t0 = match m.submit(CoreId(0), MemOp::store(a, 99), Cycle::new(0)) {
            Submit::Accepted(t) => t,
            _ => panic!(),
        };
        let (end, _) = run_until_complete(&mut m, CoreId(0), t0, 0, 600);
        assert!(m.forward_line(CoreId(0), CoreId(1), a.line_base(128), Cycle::new(end + 1)));
        let mut done_at = None;
        for t in end + 1..end + 600 {
            m.tick(Cycle::new(t));
            for e in m.drain_events() {
                if matches!(e, MemEvent::ForwardDone { .. }) {
                    done_at = Some(t);
                }
            }
            if done_at.is_some() {
                break;
            }
        }
        let end = done_at.expect("forward completes");
        assert!(m.l2_has_line(CoreId(1), a), "forward must install the line");
        let t1 = match m.submit(CoreId(1), MemOp::load(a), Cycle::new(end + 1)) {
            Submit::Accepted(t) => t,
            Submit::L1Hit { value, .. } => {
                assert_eq!(value, 99);
                assert_clean(&checker);
                return;
            }
            other => panic!("unexpected submit outcome {other:?}"),
        };
        let (_, v) = run_until_complete(&mut m, CoreId(1), t1, end + 1, 600);
        assert_eq!(v, Some(99));
        assert_clean(&checker);
    }
}

//! The shared split-transaction snoopy bus.
//!
//! Table 2: "16-byte, 1-cycle, 3-stage pipelined, split-transaction bus
//! with round robin arbitration". The bus has an *address channel*
//! (one address phase granted per bus cycle, delivered to snoopers after
//! the pipeline depth) and a *data channel* (one transfer at a time, a
//! 128-byte line taking `128/width` bus cycles). Both channels arbitrate
//! round-robin among their agents. A bus cycle is `clock_divider` CPU
//! cycles (§4.5 raises this to 4).

use std::collections::VecDeque;

use hfs_check::{Checker, Mutation};
use hfs_isa::CoreId;
use hfs_sim::stats::Counter;
use hfs_sim::{Cycle, TimedQueue};
use hfs_trace::{TraceEvent, Tracer};

use crate::cache::LineState;
use crate::config::BusConfig;
use crate::msg::CtlPayload;

/// A bus agent: a core's L2 controller or the shared L3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Agent {
    /// A core's L2.
    Core(CoreId),
    /// The shared L3 / memory controller.
    L3,
}

/// Address-channel transactions (requests and small control messages).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AddrTxn {
    /// Read for sharing.
    Rd {
        line: u64,
        requester: CoreId,
        /// Targets the streaming (queue) region: deprioritized when the
        /// arbiter favors application traffic.
        streaming: bool,
    },
    /// Read for ownership.
    RdX {
        line: u64,
        requester: CoreId,
        streaming: bool,
    },
    /// Upgrade S -> M without data.
    Upgr {
        line: u64,
        requester: CoreId,
        streaming: bool,
    },
    /// Dragon bus-update: broadcast a written word to every sharer of
    /// the line (update-based protocols only). Like an upgrade it is a
    /// pure address/snoop-phase transaction — the word payload rides the
    /// snoop response, so no data-channel transfer follows.
    Upd {
        line: u64,
        requester: CoreId,
        streaming: bool,
    },
    /// Streaming control message (occupancy update / bulk ACK).
    Ctl {
        from: CoreId,
        to: CoreId,
        payload: CtlPayload,
    },
}

/// Data-channel transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DataTxn {
    /// A line fill delivered to a requesting L2.
    FillL2 {
        line: u64,
        dest: CoreId,
        /// Coherence state the line installs in at the destination
        /// (Modified for ownership fills, Exclusive for MESI/Dragon
        /// exclusive-clean fills, Shared otherwise).
        state: LineState,
    },
    /// A dirty-line writeback into the L3.
    WbL3 { line: u64, from: CoreId },
    /// A write-forward push of a streaming line from one L2 to another.
    ForwardLine { line: u64, from: CoreId, to: CoreId },
}

/// Aggregate bus statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Address phases granted.
    pub addr_phases: u64,
    /// Data transfers completed.
    pub data_transfers: u64,
    /// CPU cycles the data channel was busy.
    pub data_busy_cycles: u64,
    /// Control messages delivered.
    pub ctl_delivered: u64,
}

#[derive(Debug)]
pub(crate) struct Bus {
    cfg: BusConfig,
    addr_queues: Vec<VecDeque<AddrTxn>>,
    addr_rr: usize,
    addr_inflight: TimedQueue<AddrTxn>,
    data_queues: Vec<VecDeque<(u64, DataTxn)>>,
    data_rr: usize,
    data_busy_until: Cycle,
    data_inflight: TimedQueue<DataTxn>,
    addr_phases: Counter,
    data_transfers: Counter,
    data_busy_cycles: Counter,
    ctl_delivered: Counter,
    tracer: Tracer,
    checker: Checker,
}

impl Bus {
    pub(crate) fn new(cfg: BusConfig, cores: usize) -> Self {
        Bus {
            cfg,
            addr_queues: vec![VecDeque::new(); cores],
            addr_rr: 0,
            addr_inflight: TimedQueue::new(),
            // Data agents: each core plus the L3 (last index).
            data_queues: vec![VecDeque::new(); cores + 1],
            data_rr: 0,
            data_busy_until: Cycle::ZERO,
            data_inflight: TimedQueue::new(),
            addr_phases: Counter::new("bus.addr_phases"),
            data_transfers: Counter::new("bus.data_transfers"),
            data_busy_cycles: Counter::new("bus.data_busy_cycles"),
            ctl_delivered: Counter::new("bus.ctl_delivered"),
            tracer: Tracer::disabled(),
            checker: Checker::disabled(),
        }
    }

    pub(crate) fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    pub(crate) fn set_checker(&mut self, checker: Checker) {
        self.checker = checker;
    }

    pub(crate) fn stats(&self) -> BusStats {
        BusStats {
            addr_phases: self.addr_phases.value(),
            data_transfers: self.data_transfers.value(),
            data_busy_cycles: self.data_busy_cycles.value(),
            ctl_delivered: self.ctl_delivered.value(),
        }
    }

    /// The bus's named counters, for the unified metrics report.
    pub(crate) fn counters(&self) -> Vec<Counter> {
        vec![
            self.addr_phases.clone(),
            self.data_transfers.clone(),
            self.data_busy_cycles.clone(),
            self.ctl_delivered.clone(),
        ]
    }

    fn data_agent_index(&self, agent: Agent) -> usize {
        match agent {
            Agent::Core(c) => c.index(),
            Agent::L3 => self.data_queues.len() - 1,
        }
    }

    /// Queues an address-phase request from a core.
    pub(crate) fn request_addr(&mut self, from: CoreId, txn: AddrTxn) {
        self.addr_queues[from.index()].push_back(txn);
    }

    /// Queues a data transfer of `bytes` from `agent`.
    pub(crate) fn request_data(&mut self, agent: Agent, bytes: u64, txn: DataTxn) {
        let idx = self.data_agent_index(agent);
        self.data_queues[idx].push_back((bytes, txn));
    }

    /// Pending address-phase requests from `core` (for back-pressure
    /// queries).
    #[allow(dead_code)] // part of the bus API surface; used by tests/tools
    pub(crate) fn addr_backlog(&self, core: CoreId) -> usize {
        self.addr_queues[core.index()].len()
    }

    /// Whether any channel has in-flight or queued work.
    pub(crate) fn is_idle(&self) -> bool {
        self.addr_inflight.is_empty()
            && self.data_inflight.is_empty()
            && self.addr_queues.iter().all(VecDeque::is_empty)
            && self.data_queues.iter().all(VecDeque::is_empty)
    }

    fn on_bus_cycle(&self, now: Cycle) -> bool {
        now.as_u64().is_multiple_of(self.cfg.clock_divider)
    }

    /// Advances one CPU cycle. Address phases and data transfers
    /// delivered this cycle are appended, in deterministic order, to the
    /// caller-owned `addr_out` / `data_out` buffers.
    pub(crate) fn tick(
        &mut self,
        now: Cycle,
        addr_out: &mut Vec<AddrTxn>,
        data_out: &mut Vec<DataTxn>,
    ) {
        while let Some(t) = self.addr_inflight.pop_ready(now) {
            if matches!(t, AddrTxn::Ctl { .. }) {
                self.ctl_delivered.inc();
            }
            addr_out.push(t);
        }
        while let Some(t) = self.data_inflight.pop_ready(now) {
            self.data_transfers.inc();
            data_out.push(t);
        }

        if self.on_bus_cycle(now) {
            self.checker.on_bus_slot(now);
            // Address channel: grant one phase round-robin. With
            // favor_app_traffic, a first pass grants only agents whose
            // head request targets ordinary memory; streaming (queue)
            // traffic is served when no application request is waiting.
            let n = self.addr_queues.len();
            let is_streaming = |t: &AddrTxn| {
                matches!(
                    t,
                    AddrTxn::Rd {
                        streaming: true,
                        ..
                    } | AddrTxn::RdX {
                        streaming: true,
                        ..
                    } | AddrTxn::Upgr {
                        streaming: true,
                        ..
                    } | AddrTxn::Upd {
                        streaming: true,
                        ..
                    } | AddrTxn::Ctl { .. }
                )
            };
            let passes: &[bool] = if self.cfg.favor_app_traffic {
                &[false, true]
            } else {
                &[true]
            };
            // Fault injection: a starved agent is never eligible, so the
            // checker's bounded-wait rule must eventually flag it.
            let starve_armed = self.checker.mutation_active(Mutation::StarveBusAgent);
            let starved = move |idx: usize| idx == 1 && starve_armed;
            'grant: for &allow_streaming in passes {
                for i in 0..n {
                    let idx = (self.addr_rr + i) % n;
                    let eligible = match self.addr_queues[idx].front() {
                        Some(t) => (allow_streaming || !is_streaming(t)) && !starved(idx),
                        None => false,
                    };
                    if eligible {
                        let txn = self.addr_queues[idx].pop_front().expect("front checked");
                        self.addr_phases.inc();
                        self.tracer.emit(|| TraceEvent::BusGrant {
                            core: CoreId(idx as u8),
                            at: now.as_u64(),
                            streaming: is_streaming(&txn),
                        });
                        self.checker.on_grant(now, idx as u8);
                        let deliver = now + self.cfg.pipeline_stages * self.cfg.clock_divider;
                        self.addr_inflight.push(deliver, txn);
                        self.addr_rr = (idx + 1) % n;
                        // Fault injection: grant a second phase in the
                        // same arbitration slot.
                        if self.checker.mutation_active(Mutation::DoubleGrantBus) {
                            let second =
                                (0..n).map(|j| (self.addr_rr + j) % n).find(|&j| {
                                    match self.addr_queues[j].front() {
                                        Some(t) => allow_streaming || !is_streaming(t),
                                        None => false,
                                    }
                                });
                            if let Some(idx2) = second {
                                if self.checker.fire_once(Mutation::DoubleGrantBus) {
                                    let txn2 =
                                        self.addr_queues[idx2].pop_front().expect("front checked");
                                    self.addr_phases.inc();
                                    self.checker.on_grant(now, idx2 as u8);
                                    self.addr_inflight.push(deliver, txn2);
                                    self.addr_rr = (idx2 + 1) % n;
                                }
                            }
                        }
                        break 'grant;
                    }
                }
                if !self.cfg.favor_app_traffic {
                    break;
                }
            }
            // Bounded-wait audit: any agent that ends the slot with a
            // queued address request went ungranted this slot.
            if self.checker.is_enabled() {
                for idx in 0..n {
                    if !self.addr_queues[idx].is_empty() {
                        self.checker.on_agent_waiting(now, idx as u8);
                    }
                }
            }
            // Data channel: start the next transfer if idle.
            if self.data_busy_until <= now {
                let n = self.data_queues.len();
                for i in 0..n {
                    let idx = (self.data_rr + i) % n;
                    if let Some((bytes, txn)) = self.data_queues[idx].pop_front() {
                        // Fault injection: silently drop one fill
                        // response; the requester's split transaction is
                        // never answered.
                        if matches!(txn, DataTxn::FillL2 { .. })
                            && self.checker.fire_once(Mutation::DropBusResponse)
                        {
                            self.data_rr = (idx + 1) % n;
                            break;
                        }
                        let busy = self.cfg.data_cycles(bytes) * self.cfg.clock_divider;
                        self.data_busy_cycles.add(busy);
                        self.tracer.emit(|| TraceEvent::BusData {
                            at: now.as_u64(),
                            cycles: busy,
                        });
                        self.data_busy_until = now + busy;
                        self.data_inflight.push(now + busy, txn);
                        self.data_rr = (idx + 1) % n;
                        break;
                    }
                }
            }
        }
    }

    /// Conservative lower bound on the next cycle at which the bus can
    /// deliver or grant anything: the head stamps of the two in-flight
    /// queues (exact — FIFOs gated by their heads), plus the next bus
    /// cycle boundary whenever any agent queue holds a request waiting
    /// for a grant (conservative for the data channel, which may also be
    /// busy until later; an early wake-up is a harmless no-op).
    pub(crate) fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut best: Option<Cycle> = None;
        let mut fold = |t: Cycle| {
            best = Some(best.map_or(t, |b| b.min(t)));
        };
        if let Some(t) = self.addr_inflight.next_ready() {
            fold(t.max(now.next()));
        }
        if let Some(t) = self.data_inflight.next_ready() {
            fold(t.max(now.next()));
        }
        let queued = !self.addr_queues.iter().all(VecDeque::is_empty)
            || !self.data_queues.iter().all(VecDeque::is_empty);
        if queued {
            let d = self.cfg.clock_divider;
            let next_bus_cycle = if d <= 1 {
                now.next()
            } else {
                Cycle::new((now.as_u64() / d + 1) * d)
            };
            fold(next_bus_cycle);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bus() -> Bus {
        Bus::new(BusConfig::baseline(), 2)
    }

    type Stamped<T> = Vec<(u64, T)>;

    fn run(bus: &mut Bus, from: u64, to: u64) -> (Stamped<AddrTxn>, Stamped<DataTxn>) {
        let mut a = Vec::new();
        let mut d = Vec::new();
        let (mut ads, mut dts) = (Vec::new(), Vec::new());
        for c in from..to {
            bus.tick(Cycle::new(c), &mut ads, &mut dts);
            a.extend(ads.drain(..).map(|t| (c, t)));
            d.extend(dts.drain(..).map(|t| (c, t)));
        }
        (a, d)
    }

    #[test]
    fn addr_phase_delivers_after_pipeline() {
        let mut b = bus();
        b.request_addr(
            CoreId(0),
            AddrTxn::Rd {
                line: 5,
                requester: CoreId(0),
                streaming: false,
            },
        );
        let (a, _) = run(&mut b, 0, 10);
        assert_eq!(a.len(), 1);
        // Granted at cycle 0, delivered 3 bus cycles later.
        assert_eq!(a[0].0, 3);
    }

    #[test]
    fn addr_arbitration_is_round_robin() {
        let mut b = bus();
        for _ in 0..2 {
            b.request_addr(
                CoreId(0),
                AddrTxn::Rd {
                    line: 1,
                    requester: CoreId(0),
                    streaming: false,
                },
            );
            b.request_addr(
                CoreId(1),
                AddrTxn::Rd {
                    line: 2,
                    requester: CoreId(1),
                    streaming: false,
                },
            );
        }
        let (a, _) = run(&mut b, 0, 20);
        let order: Vec<u64> = a
            .iter()
            .map(|(_, t)| match t {
                AddrTxn::Rd { requester, .. } => u64::from(requester.0),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 0, 1]);
    }

    #[test]
    fn line_transfer_occupies_width_cycles() {
        let mut b = bus();
        b.request_data(
            Agent::L3,
            128,
            DataTxn::FillL2 {
                line: 1,
                dest: CoreId(0),
                state: LineState::Shared,
            },
        );
        let (_, d) = run(&mut b, 0, 20);
        assert_eq!(d.len(), 1);
        // 128B / 16B = 8 bus cycles.
        assert_eq!(d[0].0, 8);
        assert_eq!(b.stats().data_busy_cycles, 8);
    }

    #[test]
    fn clock_divider_stretches_everything() {
        let cfg = BusConfig {
            clock_divider: 4,
            ..BusConfig::baseline()
        };
        let mut b = Bus::new(cfg, 2);
        b.request_addr(
            CoreId(0),
            AddrTxn::Rd {
                line: 9,
                requester: CoreId(0),
                streaming: false,
            },
        );
        b.request_data(
            Agent::Core(CoreId(0)),
            128,
            DataTxn::WbL3 {
                line: 9,
                from: CoreId(0),
            },
        );
        let (a, d) = run(&mut b, 0, 64);
        assert_eq!(a[0].0, 12); // 3 stages x divider 4
        assert_eq!(d[0].0, 32); // 8 bus cycles x divider 4
    }

    #[test]
    fn data_transfers_serialize() {
        let mut b = bus();
        for i in 0..2 {
            b.request_data(
                Agent::Core(CoreId(i)),
                128,
                DataTxn::WbL3 {
                    line: u64::from(i),
                    from: CoreId(i),
                },
            );
        }
        let (_, d) = run(&mut b, 0, 40);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].0, 8);
        assert_eq!(d[1].0, 16); // starts only after the first finishes
    }

    #[test]
    fn ctl_counts_in_stats() {
        let mut b = bus();
        b.request_addr(
            CoreId(1),
            AddrTxn::Ctl {
                from: CoreId(1),
                to: CoreId(0),
                payload: CtlPayload {
                    kind: 1,
                    a: 2,
                    b: 3,
                },
            },
        );
        let (a, _) = run(&mut b, 0, 10);
        assert_eq!(a.len(), 1);
        assert_eq!(b.stats().ctl_delivered, 1);
        assert_eq!(b.stats().addr_phases, 1);
    }

    #[test]
    fn favor_app_traffic_reorders_across_agents() {
        let cfg = BusConfig {
            favor_app_traffic: true,
            ..BusConfig::baseline()
        };
        let mut b = Bus::new(cfg, 2);
        // Core 0 (round-robin first) has a streaming request; core 1 has
        // an application request. The arbiter must grant core 1 first.
        b.request_addr(
            CoreId(0),
            AddrTxn::Rd {
                line: 1,
                requester: CoreId(0),
                streaming: true,
            },
        );
        b.request_addr(
            CoreId(1),
            AddrTxn::Rd {
                line: 2,
                requester: CoreId(1),
                streaming: false,
            },
        );
        let (a, _) = run(&mut b, 0, 10);
        let order: Vec<u64> = a
            .iter()
            .map(|(_, t)| match t {
                AddrTxn::Rd { requester, .. } => u64::from(requester.0),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 0], "application traffic goes first");

        // Without the flag, plain round-robin serves core 0 first.
        let mut fair = Bus::new(BusConfig::baseline(), 2);
        fair.request_addr(
            CoreId(0),
            AddrTxn::Rd {
                line: 1,
                requester: CoreId(0),
                streaming: true,
            },
        );
        fair.request_addr(
            CoreId(1),
            AddrTxn::Rd {
                line: 2,
                requester: CoreId(1),
                streaming: false,
            },
        );
        let mut a2 = Vec::new();
        let mut dts = Vec::new();
        for c in 0..10u64 {
            fair.tick(Cycle::new(c), &mut a2, &mut dts);
        }
        let order2: Vec<u64> = a2
            .iter()
            .map(|t| match t {
                AddrTxn::Rd { requester, .. } => u64::from(requester.0),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order2, vec![0, 1]);
    }

    #[test]
    fn streaming_starvation_is_bounded_by_empty_app_queues() {
        let cfg = BusConfig {
            favor_app_traffic: true,
            ..BusConfig::baseline()
        };
        let mut b = Bus::new(cfg, 2);
        b.request_addr(
            CoreId(0),
            AddrTxn::Rd {
                line: 7,
                requester: CoreId(0),
                streaming: true,
            },
        );
        // No app traffic at all: the streaming request is still granted.
        let (a, _) = run(&mut b, 0, 10);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn idle_reports_correctly() {
        let mut b = bus();
        assert!(b.is_idle());
        b.request_addr(
            CoreId(0),
            AddrTxn::Rd {
                line: 0,
                requester: CoreId(0),
                streaming: false,
            },
        );
        assert!(!b.is_idle());
        let _ = run(&mut b, 0, 10);
        assert!(b.is_idle());
    }
}

//! Property-based tests for the memory substrate.

use hfs_isa::{Addr, CoreId};
use hfs_mem::{CacheArray, CacheGeometry, LineState, MemConfig, MemOp, MemSystem, Submit};
use proptest::prelude::*;

proptest! {
    /// A cache never holds more lines than its capacity, and a line just
    /// installed is always resident.
    #[test]
    fn cache_capacity_invariant(lines in prop::collection::vec(0u64..64, 1..200)) {
        let geom = CacheGeometry::new(4096, 4, 64); // 16 sets x 4 ways
        let mut c = CacheArray::new(geom).unwrap();
        let capacity = (geom.sets() * u64::from(geom.ways)) as usize;
        for &l in &lines {
            c.install(l, LineState::Shared);
            prop_assert!(c.probe(l).is_some(), "line {l} must be resident after install");
            prop_assert!(c.resident() <= capacity);
        }
    }

    /// Invalidation removes exactly the named line.
    #[test]
    fn invalidate_is_precise(a in 0u64..32, b in 0u64..32) {
        prop_assume!(a != b);
        let mut c = CacheArray::new(CacheGeometry::new(16 * 1024, 4, 64)).unwrap();
        c.install(a, LineState::Modified);
        c.install(b, LineState::Shared);
        c.invalidate(a);
        prop_assert!(c.probe(a).is_none());
        prop_assert!(c.probe(b).is_some());
    }

    /// Single-core read-your-writes: any interleaving of stores and loads
    /// through the full hierarchy returns the last written value per word.
    #[test]
    fn read_your_writes(ops in prop::collection::vec((0u64..32, 0u64..1000), 1..25)) {
        let mut m = MemSystem::new(MemConfig::itanium2_single()).unwrap();
        let mut shadow = std::collections::HashMap::new();
        let mut now = 0u64;
        for (word, val) in ops {
            let addr = Addr::new(0x10_0000 + word * 8);
            // Store, then wait for it to perform.
            let tok = match m.submit(CoreId(0), MemOp::store(addr, val), hfs_sim::Cycle::new(now)) {
                Submit::Accepted(t) => t,
                other => return Err(TestCaseError::fail(format!("store rejected: {other:?}"))),
            };
            let mut done = false;
            for _ in 0..5000 {
                now += 1;
                let t = hfs_sim::Cycle::new(now);
                m.tick(t);
                if m.drain_completions(CoreId(0), t).iter().any(|c| c.token == tok) {
                    done = true;
                    break;
                }
            }
            prop_assert!(done, "store never performed");
            shadow.insert(word, val);
            // Load back.
            now += 1;
            let v = match m.submit(CoreId(0), MemOp::load(addr), hfs_sim::Cycle::new(now)) {
                Submit::L1Hit { value, .. } => Some(value),
                Submit::Accepted(tok) => {
                    let mut got = None;
                    for _ in 0..5000 {
                        now += 1;
                        let t = hfs_sim::Cycle::new(now);
                        m.tick(t);
                        if let Some(c) = m
                            .drain_completions(CoreId(0), t)
                            .into_iter()
                            .find(|c| c.token == tok)
                        {
                            got = c.value;
                            break;
                        }
                    }
                    got
                }
                Submit::Rejected(_) => None,
            };
            prop_assert_eq!(v, shadow.get(&word).copied());
        }
    }
}

//! Randomized property tests for the memory substrate, driven by the
//! workspace's deterministic [`Rng64`].

use hfs_isa::{Addr, CoreId};
use hfs_mem::{CacheArray, CacheGeometry, LineState, MemConfig, MemOp, MemSystem, Submit};
use hfs_sim::Rng64;

/// A cache never holds more lines than its capacity, and a line just
/// installed is always resident.
#[test]
fn cache_capacity_invariant() {
    let mut rng = Rng64::new(0x3E3_0001);
    for _ in 0..32 {
        let len = 1 + rng.below(199) as usize;
        let lines: Vec<u64> = (0..len).map(|_| rng.below(64)).collect();
        let geom = CacheGeometry::new(4096, 4, 64); // 16 sets x 4 ways
        let mut c = CacheArray::new(geom).unwrap();
        let capacity = (geom.sets() * u64::from(geom.ways)) as usize;
        for &l in &lines {
            c.install(l, LineState::Shared);
            assert!(
                c.probe(l).is_some(),
                "line {l} must be resident after install"
            );
            assert!(c.resident() <= capacity);
        }
    }
}

/// Invalidation removes exactly the named line.
#[test]
fn invalidate_is_precise() {
    let mut rng = Rng64::new(0x3E3_0002);
    for _ in 0..32 {
        let a = rng.below(32);
        let b = rng.below(32);
        if a == b {
            continue;
        }
        let mut c = CacheArray::new(CacheGeometry::new(16 * 1024, 4, 64)).unwrap();
        c.install(a, LineState::Modified);
        c.install(b, LineState::Shared);
        c.invalidate(a);
        assert!(c.probe(a).is_none());
        assert!(c.probe(b).is_some());
    }
}

/// Single-core read-your-writes: any interleaving of stores and loads
/// through the full hierarchy returns the last written value per word.
#[test]
fn read_your_writes() {
    let mut rng = Rng64::new(0x3E3_0003);
    for _ in 0..16 {
        let n_ops = 1 + rng.below(24) as usize;
        let ops: Vec<(u64, u64)> = (0..n_ops)
            .map(|_| (rng.below(32), rng.below(1000)))
            .collect();
        let mut m = MemSystem::new(MemConfig::itanium2_single()).unwrap();
        let mut shadow = std::collections::HashMap::new();
        let mut now = 0u64;
        for (word, val) in ops {
            let addr = Addr::new(0x10_0000 + word * 8);
            // Store, then wait for it to perform.
            let tok = match m.submit(CoreId(0), MemOp::store(addr, val), hfs_sim::Cycle::new(now)) {
                Submit::Accepted(t) => t,
                other => panic!("store rejected: {other:?}"),
            };
            let mut done = false;
            for _ in 0..5000 {
                now += 1;
                let t = hfs_sim::Cycle::new(now);
                m.tick(t);
                if m.drain_completions(CoreId(0), t)
                    .iter()
                    .any(|c| c.token == tok)
                {
                    done = true;
                    break;
                }
            }
            assert!(done, "store never performed");
            shadow.insert(word, val);
            // Load back.
            now += 1;
            let v = match m.submit(CoreId(0), MemOp::load(addr), hfs_sim::Cycle::new(now)) {
                Submit::L1Hit { value, .. } => Some(value),
                Submit::Accepted(tok) => {
                    let mut got = None;
                    for _ in 0..5000 {
                        now += 1;
                        let t = hfs_sim::Cycle::new(now);
                        m.tick(t);
                        if let Some(c) = m
                            .drain_completions(CoreId(0), t)
                            .into_iter()
                            .find(|c| c.token == tok)
                        {
                            got = c.value;
                            break;
                        }
                    }
                    got
                }
                Submit::Rejected(_) => None,
            };
            assert_eq!(v, shadow.get(&word).copied());
        }
    }
}

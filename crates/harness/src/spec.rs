//! Wire (de)serialization of [`Job`] specifications.
//!
//! The `hfs-serve` protocol ships whole jobs — kernel pair, full machine
//! configuration, mode, budgets — as JSON, so a client can submit any
//! sweep the offline runner could build (including the ablation sweeps
//! that mutate arbitrary [`MachineConfig`] fields). Encoding is
//! total; decoding validates shape but deliberately not semantics (the
//! simulator's own `validate()` runs when the machine is built, so a
//! malformed spec fails the job, not the server).
//!
//! Kernel and region names are `&'static str` in the simulator's types;
//! decoding interns each distinct name once (leaking it), which is
//! bounded by the set of distinct benchmark/region names a server ever
//! sees.

use std::collections::BTreeSet;
use std::sync::Mutex;

use hfs_core::kernel::{KRegion, KStep, Kernel, KernelPair};
use hfs_core::{
    DesignPoint, HeavyWtConfig, MachineConfig, RegMappedConfig, SoftwareConfig, SyncOptiConfig,
};
use hfs_cpu::CoreConfig;
use hfs_isa::QueueId;
use hfs_mem::{BusConfig, CacheGeometry, MemConfig, Protocol};

use crate::job::{Job, Mode};
use crate::json::Json;
use crate::ser::DecodeError;

/// Interns `s`, returning a `'static` copy. Each distinct string leaks
/// exactly once, shared by every later request for it.
fn intern(s: &str) -> &'static str {
    static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut set = INTERNED.lock().unwrap();
    if let Some(&hit) = set.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

fn u64_field(v: &Json, key: &str) -> Result<u64, DecodeError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| DecodeError(format!("missing u64 field `{key}`")))
}

fn u32_field(v: &Json, key: &str) -> Result<u32, DecodeError> {
    u32::try_from(u64_field(v, key)?).map_err(|_| DecodeError(format!("field `{key}` exceeds u32")))
}

fn bool_field(v: &Json, key: &str) -> Result<bool, DecodeError> {
    match v.get(key) {
        Some(Json::Bool(b)) => Ok(*b),
        _ => Err(DecodeError(format!("missing bool field `{key}`"))),
    }
}

fn str_field<'a>(v: &'a Json, key: &str) -> Result<&'a str, DecodeError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| DecodeError(format!("missing string field `{key}`")))
}

fn obj_field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, DecodeError> {
    v.get(key)
        .ok_or_else(|| DecodeError(format!("missing object field `{key}`")))
}

fn step_to_json(s: &KStep) -> Json {
    match s {
        KStep::Alu(n) => Json::obj(vec![
            ("op", Json::Str("alu".into())),
            ("n", Json::U64(u64::from(*n))),
        ]),
        KStep::AluChain(n) => Json::obj(vec![
            ("op", Json::Str("alu_chain".into())),
            ("n", Json::U64(u64::from(*n))),
        ]),
        KStep::FpChain(n) => Json::obj(vec![
            ("op", Json::Str("fp_chain".into())),
            ("n", Json::U64(u64::from(*n))),
        ]),
        KStep::Fp(n) => Json::obj(vec![
            ("op", Json::Str("fp".into())),
            ("n", Json::U64(u64::from(*n))),
        ]),
        KStep::Branch => Json::obj(vec![("op", Json::Str("branch".into()))]),
        KStep::LoadStream { region, stride } => Json::obj(vec![
            ("op", Json::Str("load_stream".into())),
            ("region", Json::U64(*region as u64)),
            ("stride", Json::U64(*stride)),
        ]),
        KStep::LoadRandom { region } => Json::obj(vec![
            ("op", Json::Str("load_random".into())),
            ("region", Json::U64(*region as u64)),
        ]),
        KStep::StoreStream { region, stride } => Json::obj(vec![
            ("op", Json::Str("store_stream".into())),
            ("region", Json::U64(*region as u64)),
            ("stride", Json::U64(*stride)),
        ]),
        KStep::StoreRandom { region } => Json::obj(vec![
            ("op", Json::Str("store_random".into())),
            ("region", Json::U64(*region as u64)),
        ]),
        KStep::Produce(q) => Json::obj(vec![
            ("op", Json::Str("produce".into())),
            ("queue", Json::U64(u64::from(q.0))),
        ]),
        KStep::Consume(q) => Json::obj(vec![
            ("op", Json::Str("consume".into())),
            ("queue", Json::U64(u64::from(q.0))),
        ]),
        KStep::Loop(body, count) => Json::obj(vec![
            ("op", Json::Str("loop".into())),
            ("count", Json::U64(*count)),
            ("body", Json::Arr(body.iter().map(step_to_json).collect())),
        ]),
    }
}

fn step_from_json(v: &Json) -> Result<KStep, DecodeError> {
    let queue = |v: &Json| -> Result<QueueId, DecodeError> {
        let q = u64_field(v, "queue")?;
        u16::try_from(q)
            .map(QueueId)
            .map_err(|_| DecodeError("queue id exceeds u16".into()))
    };
    let region = |v: &Json| -> Result<usize, DecodeError> {
        usize::try_from(u64_field(v, "region")?)
            .map_err(|_| DecodeError("region index exceeds usize".into()))
    };
    match str_field(v, "op")? {
        "alu" => Ok(KStep::Alu(u32_field(v, "n")?)),
        "alu_chain" => Ok(KStep::AluChain(u32_field(v, "n")?)),
        "fp_chain" => Ok(KStep::FpChain(u32_field(v, "n")?)),
        "fp" => Ok(KStep::Fp(u32_field(v, "n")?)),
        "branch" => Ok(KStep::Branch),
        "load_stream" => Ok(KStep::LoadStream {
            region: region(v)?,
            stride: u64_field(v, "stride")?,
        }),
        "load_random" => Ok(KStep::LoadRandom { region: region(v)? }),
        "store_stream" => Ok(KStep::StoreStream {
            region: region(v)?,
            stride: u64_field(v, "stride")?,
        }),
        "store_random" => Ok(KStep::StoreRandom { region: region(v)? }),
        "produce" => Ok(KStep::Produce(queue(v)?)),
        "consume" => Ok(KStep::Consume(queue(v)?)),
        "loop" => {
            let body = obj_field(v, "body")?
                .as_arr()
                .ok_or_else(|| DecodeError("loop `body` must be an array".into()))?
                .iter()
                .map(step_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            Ok(KStep::Loop(body, u64_field(v, "count")?))
        }
        other => Err(DecodeError(format!("unknown kernel op `{other}`"))),
    }
}

fn kernel_to_json(k: &Kernel) -> Json {
    Json::obj(vec![
        (
            "regions",
            Json::Arr(
                k.regions
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("name", Json::Str(r.name.to_string())),
                            ("bytes", Json::U64(r.bytes)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "steps",
            Json::Arr(k.steps.iter().map(step_to_json).collect()),
        ),
    ])
}

fn kernel_from_json(v: &Json) -> Result<Kernel, DecodeError> {
    let regions = obj_field(v, "regions")?
        .as_arr()
        .ok_or_else(|| DecodeError("`regions` must be an array".into()))?
        .iter()
        .map(|r| {
            Ok(KRegion {
                name: intern(str_field(r, "name")?),
                bytes: u64_field(r, "bytes")?,
            })
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    let steps = obj_field(v, "steps")?
        .as_arr()
        .ok_or_else(|| DecodeError("`steps` must be an array".into()))?
        .iter()
        .map(step_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Kernel { regions, steps })
}

fn pair_to_json(p: &KernelPair) -> Json {
    Json::obj(vec![
        ("name", Json::Str(p.name.to_string())),
        ("producer", kernel_to_json(&p.producer)),
        ("consumer", kernel_to_json(&p.consumer)),
        ("iterations", Json::U64(p.iterations)),
    ])
}

fn pair_from_json(v: &Json) -> Result<KernelPair, DecodeError> {
    Ok(KernelPair {
        name: intern(str_field(v, "name")?),
        producer: kernel_from_json(obj_field(v, "producer")?)?,
        consumer: kernel_from_json(obj_field(v, "consumer")?)?,
        iterations: u64_field(v, "iterations")?,
    })
}

fn design_to_json(d: &DesignPoint) -> Json {
    match d {
        DesignPoint::Existing(c) => Json::obj(vec![
            ("kind", Json::Str("existing".into())),
            ("qlu", Json::U64(u64::from(c.qlu))),
        ]),
        DesignPoint::MemOpti(c) => Json::obj(vec![
            ("kind", Json::Str("memopti".into())),
            ("qlu", Json::U64(u64::from(c.qlu))),
        ]),
        DesignPoint::SyncOpti(c) => Json::obj(vec![
            ("kind", Json::Str("syncopti".into())),
            ("queue_depth", Json::U64(u64::from(c.queue_depth))),
            ("qlu", Json::U64(u64::from(c.qlu))),
            ("stream_cache", Json::Bool(c.stream_cache)),
        ]),
        DesignPoint::HeavyWt(c) => Json::obj(vec![
            ("kind", Json::Str("heavywt".into())),
            ("queue_depth", Json::U64(u64::from(c.queue_depth))),
            ("transit", Json::U64(c.transit)),
            ("sa_ops_per_cycle", Json::U64(u64::from(c.sa_ops_per_cycle))),
            ("sa_latency", Json::U64(c.sa_latency)),
        ]),
        DesignPoint::RegMapped(c) => Json::obj(vec![
            ("kind", Json::Str("regmapped".into())),
            ("queue_depth", Json::U64(u64::from(c.queue_depth))),
            ("transit", Json::U64(c.transit)),
            ("sa_ops_per_cycle", Json::U64(u64::from(c.sa_ops_per_cycle))),
            ("spill_ops", Json::U64(u64::from(c.spill_ops))),
        ]),
    }
}

fn design_from_json(v: &Json) -> Result<DesignPoint, DecodeError> {
    match str_field(v, "kind")? {
        "existing" => Ok(DesignPoint::Existing(SoftwareConfig {
            qlu: u32_field(v, "qlu")?,
        })),
        "memopti" => Ok(DesignPoint::MemOpti(SoftwareConfig {
            qlu: u32_field(v, "qlu")?,
        })),
        "syncopti" => Ok(DesignPoint::SyncOpti(SyncOptiConfig {
            queue_depth: u32_field(v, "queue_depth")?,
            qlu: u32_field(v, "qlu")?,
            stream_cache: bool_field(v, "stream_cache")?,
        })),
        "heavywt" => Ok(DesignPoint::HeavyWt(HeavyWtConfig {
            queue_depth: u32_field(v, "queue_depth")?,
            transit: u64_field(v, "transit")?,
            sa_ops_per_cycle: u32_field(v, "sa_ops_per_cycle")?,
            sa_latency: u64_field(v, "sa_latency")?,
        })),
        "regmapped" => Ok(DesignPoint::RegMapped(RegMappedConfig {
            queue_depth: u32_field(v, "queue_depth")?,
            transit: u64_field(v, "transit")?,
            sa_ops_per_cycle: u32_field(v, "sa_ops_per_cycle")?,
            spill_ops: u32_field(v, "spill_ops")?,
        })),
        other => Err(DecodeError(format!("unknown design kind `{other}`"))),
    }
}

fn geometry_to_json(g: &CacheGeometry) -> Json {
    Json::obj(vec![
        ("bytes", Json::U64(g.bytes)),
        ("ways", Json::U64(u64::from(g.ways))),
        ("line_bytes", Json::U64(g.line_bytes)),
    ])
}

fn geometry_from_json(v: &Json) -> Result<CacheGeometry, DecodeError> {
    Ok(CacheGeometry {
        bytes: u64_field(v, "bytes")?,
        ways: u32_field(v, "ways")?,
        line_bytes: u64_field(v, "line_bytes")?,
    })
}

fn mem_to_json(m: &MemConfig) -> Json {
    Json::obj(vec![
        ("cores", Json::U64(u64::from(m.cores))),
        ("l1d", geometry_to_json(&m.l1d)),
        ("l1_latency", Json::U64(m.l1_latency)),
        ("l2", geometry_to_json(&m.l2)),
        ("l2_latency_min", Json::U64(m.l2_latency_min)),
        ("l2_ports", Json::U64(u64::from(m.l2_ports))),
        ("ozq_entries", Json::U64(u64::from(m.ozq_entries))),
        ("recirc_interval", Json::U64(m.recirc_interval)),
        ("l3", geometry_to_json(&m.l3)),
        ("l3_latency", Json::U64(m.l3_latency)),
        ("dram_latency", Json::U64(m.dram_latency)),
        (
            "bus",
            Json::obj(vec![
                ("width_bytes", Json::U64(m.bus.width_bytes)),
                ("clock_divider", Json::U64(m.bus.clock_divider)),
                ("pipeline_stages", Json::U64(m.bus.pipeline_stages)),
                ("favor_app_traffic", Json::Bool(m.bus.favor_app_traffic)),
            ]),
        ),
        ("protocol", Json::Str(m.protocol.label().into())),
    ])
}

fn mem_from_json(v: &Json) -> Result<MemConfig, DecodeError> {
    let bus = obj_field(v, "bus")?;
    Ok(MemConfig {
        cores: u8::try_from(u64_field(v, "cores")?)
            .map_err(|_| DecodeError("`cores` exceeds u8".into()))?,
        l1d: geometry_from_json(obj_field(v, "l1d")?)?,
        l1_latency: u64_field(v, "l1_latency")?,
        l2: geometry_from_json(obj_field(v, "l2")?)?,
        l2_latency_min: u64_field(v, "l2_latency_min")?,
        l2_ports: u32_field(v, "l2_ports")?,
        ozq_entries: u32_field(v, "ozq_entries")?,
        recirc_interval: u64_field(v, "recirc_interval")?,
        l3: geometry_from_json(obj_field(v, "l3")?)?,
        l3_latency: u64_field(v, "l3_latency")?,
        dram_latency: u64_field(v, "dram_latency")?,
        bus: BusConfig {
            width_bytes: u64_field(bus, "width_bytes")?,
            clock_divider: u64_field(bus, "clock_divider")?,
            pipeline_stages: u64_field(bus, "pipeline_stages")?,
            favor_app_traffic: bool_field(bus, "favor_app_traffic")?,
        },
        // Specs written before the protocol axis existed default to MSI.
        protocol: match v.get("protocol").and_then(Json::as_str) {
            None => Protocol::Msi,
            Some(s) => {
                Protocol::parse(s).ok_or_else(|| DecodeError(format!("unknown protocol `{s}`")))?
            }
        },
    })
}

fn core_to_json(c: &CoreConfig) -> Json {
    Json::obj(vec![
        ("issue_width", Json::U64(u64::from(c.issue_width))),
        ("int_alus", Json::U64(u64::from(c.int_alus))),
        ("fp_units", Json::U64(u64::from(c.fp_units))),
        ("branch_units", Json::U64(u64::from(c.branch_units))),
        ("mem_ports", Json::U64(u64::from(c.mem_ports))),
        ("window", Json::U64(u64::from(c.window))),
        ("free_queue_ops", Json::Bool(c.free_queue_ops)),
    ])
}

fn core_from_json(v: &Json) -> Result<CoreConfig, DecodeError> {
    Ok(CoreConfig {
        issue_width: u32_field(v, "issue_width")?,
        int_alus: u32_field(v, "int_alus")?,
        fp_units: u32_field(v, "fp_units")?,
        branch_units: u32_field(v, "branch_units")?,
        mem_ports: u32_field(v, "mem_ports")?,
        window: u32_field(v, "window")?,
        free_queue_ops: bool_field(v, "free_queue_ops")?,
    })
}

/// Serializes a full [`MachineConfig`] (memory hierarchy, core, design
/// point, seed, deadlock window).
pub fn machine_config_to_json(c: &MachineConfig) -> Json {
    Json::obj(vec![
        ("mem", mem_to_json(&c.mem)),
        ("core", core_to_json(&c.core)),
        ("design", design_to_json(&c.design)),
        ("seed", Json::U64(c.seed)),
        ("deadlock_cycles", Json::U64(c.deadlock_cycles)),
    ])
}

/// Reconstructs a [`MachineConfig`] from JSON.
///
/// # Errors
///
/// [`DecodeError`] on missing or mistyped fields.
pub fn machine_config_from_json(v: &Json) -> Result<MachineConfig, DecodeError> {
    Ok(MachineConfig {
        mem: mem_from_json(obj_field(v, "mem")?)?,
        core: core_from_json(obj_field(v, "core")?)?,
        design: design_from_json(obj_field(v, "design")?)?,
        seed: u64_field(v, "seed")?,
        deadlock_cycles: u64_field(v, "deadlock_cycles")?,
    })
}

/// Serializes a [`Job`] spec — everything a remote engine needs to run
/// it, including the display label (which is not part of the cache key).
pub fn job_to_json(job: &Job) -> Json {
    let mut pairs = vec![
        ("label", Json::Str(job.label.clone())),
        (
            "mode",
            Json::Str(
                match job.mode {
                    Mode::Pipeline => "pipeline",
                    Mode::Single => "single",
                    Mode::Multi(_) => "multi",
                }
                .into(),
            ),
        ),
    ];
    if let Mode::Multi(n) = job.mode {
        pairs.push(("pairs", Json::U64(u64::from(n))));
    }
    pairs.extend([
        ("max_cycles", Json::U64(job.max_cycles)),
        ("retries", Json::U64(u64::from(job.retries))),
        ("metrics", Json::Bool(job.metrics)),
        ("pair", pair_to_json(&job.pair)),
        ("cfg", machine_config_to_json(&job.cfg)),
    ]);
    Json::obj(pairs)
}

/// Reconstructs a [`Job`] from its wire spec.
///
/// # Errors
///
/// [`DecodeError`] on missing or mistyped fields, unknown modes, or
/// unknown design kinds.
pub fn job_from_json(v: &Json) -> Result<Job, DecodeError> {
    let mode = match str_field(v, "mode")? {
        "pipeline" => Mode::Pipeline,
        "single" => Mode::Single,
        "multi" => Mode::Multi(
            u8::try_from(u64_field(v, "pairs")?)
                .map_err(|_| DecodeError("`pairs` exceeds u8".into()))?,
        ),
        other => Err(DecodeError(format!("unknown mode `{other}`")))?,
    };
    Ok(Job::from_parts(
        str_field(v, "label")?.to_string(),
        pair_from_json(obj_field(v, "pair")?)?,
        machine_config_from_json(obj_field(v, "cfg")?)?,
        mode,
        u64_field(v, "max_cycles")?,
        u32_field(v, "retries")?,
        bool_field(v, "metrics")?,
    ))
}

/// Serializes a named sweep — the `hfs-client submit` payload and the
/// `--dump-jobs` output format: `{"experiment": ..., "jobs": [...]}`.
pub fn sweep_to_json(experiment: &str, jobs: &[Job]) -> Json {
    Json::obj(vec![
        ("experiment", Json::Str(experiment.to_string())),
        ("jobs", Json::Arr(jobs.iter().map(job_to_json).collect())),
    ])
}

/// Decodes a named sweep back into `(experiment, jobs)`.
///
/// # Errors
///
/// [`DecodeError`] on malformed sweeps or any malformed job within.
pub fn sweep_from_json(v: &Json) -> Result<(String, Vec<Job>), DecodeError> {
    let name = str_field(v, "experiment")?.to_string();
    let jobs = obj_field(v, "jobs")?
        .as_arr()
        .ok_or_else(|| DecodeError("`jobs` must be an array".into()))?
        .iter()
        .map(job_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok((name, jobs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn demo_job() -> Job {
        Job::pipeline(
            "spec/demo/HEAVYWT",
            KernelPair::simple("demo", 3, 50),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        )
    }

    #[test]
    fn simple_job_round_trips_exactly() {
        let job = demo_job();
        let text = job_to_json(&job).to_pretty();
        let back = job_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back.label, job.label);
        assert_eq!(back.pair, job.pair);
        assert_eq!(back.cfg, job.cfg);
        assert_eq!(back.mode, job.mode);
        assert_eq!(
            back.key(),
            job.key(),
            "wire round-trip preserves the cache key"
        );
        assert_eq!(job_to_json(&back).to_pretty(), text);
    }

    #[test]
    fn complex_job_round_trips() {
        // Exercise every step kind, regions, loops, multi mode, a mutated
        // memory config (the ablation sweeps), and a non-default design.
        use hfs_isa::QueueId;
        let q = QueueId(2);
        let mut producer = Kernel::new(vec![
            KStep::Alu(4),
            KStep::AluChain(2),
            KStep::Fp(1),
            KStep::FpChain(3),
            KStep::Branch,
            KStep::Loop(vec![KStep::Produce(q), KStep::Alu(1)], 4),
        ]);
        let src = producer.add_region("src", 1 << 20);
        producer.steps.push(KStep::LoadStream {
            region: src,
            stride: 8,
        });
        producer.steps.push(KStep::LoadRandom { region: src });
        let mut consumer = Kernel::new(vec![KStep::Loop(vec![KStep::Consume(q)], 4)]);
        let dst = consumer.add_region("dst", 64 * 1024);
        consumer.steps.push(KStep::StoreStream {
            region: dst,
            stride: 16,
        });
        consumer.steps.push(KStep::StoreRandom { region: dst });
        let pair = KernelPair {
            name: "complex",
            producer,
            consumer,
            iterations: 77,
        };
        let mut cfg = MachineConfig::itanium2_cmp(DesignPoint::syncopti_sc_q64())
            .with_bus_divider(4)
            .with_bus_width(128);
        cfg.mem.ozq_entries = 8;
        cfg.mem.l2_ports = 2;
        cfg.mem.bus.favor_app_traffic = true;
        cfg.seed = 42;
        let job = Job::multi("spec/complex", pair, cfg, 3)
            .with_max_cycles(123_456)
            .with_retries(2)
            .with_metrics(true);
        let text = job_to_json(&job).to_string();
        let back = job_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back.pair, job.pair);
        assert_eq!(back.cfg, job.cfg);
        assert_eq!(back.mode, Mode::Multi(3));
        assert_eq!(back.max_cycles, 123_456);
        assert_eq!(back.retries, 2);
        assert!(back.metrics);
        assert_eq!(back.key(), job.key());
    }

    #[test]
    fn every_design_kind_round_trips() {
        for d in [
            DesignPoint::existing(),
            DesignPoint::existing_with_qlu(1),
            DesignPoint::memopti_with_qlu(4),
            DesignPoint::syncopti(),
            DesignPoint::syncopti_sc_q64(),
            DesignPoint::heavywt(),
            DesignPoint::heavywt_with(10, 64),
            DesignPoint::heavywt_centralized(12),
            DesignPoint::regmapped(3),
        ] {
            let back = design_from_json(&design_to_json(&d)).unwrap();
            assert_eq!(back, d, "{d}");
        }
    }

    #[test]
    fn decoded_run_matches_local_run() {
        // The decode path must produce a job the simulator treats as
        // identical: same key, same deterministic cycle count.
        let job = demo_job();
        let back = job_from_json(&job_to_json(&job)).unwrap();
        let a = crate::job::execute(&job, 0);
        let b = crate::job::execute(&back, 0);
        assert_eq!(a.ok().unwrap().cycles, b.ok().unwrap().cycles);
    }

    #[test]
    fn interner_dedupes_names() {
        let a = intern("same-name");
        let b = intern("same-name");
        assert_eq!(a.as_ptr(), b.as_ptr(), "one leak per distinct string");
    }

    #[test]
    fn sweep_round_trips() {
        let jobs = vec![demo_job(), demo_job().with_metrics(true)];
        let v = sweep_to_json("fig6", &jobs);
        let (name, back) = sweep_from_json(&v).unwrap();
        assert_eq!(name, "fig6");
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].key(), jobs[0].key());
        assert_eq!(back[1].key(), jobs[1].key());
    }

    #[test]
    fn decode_rejects_malformed_specs() {
        for bad in [
            "{}",
            r#"{"label":"x","mode":"warp"}"#,
            r#"{"label":"x","mode":"multi","max_cycles":1,"retries":0,"metrics":false}"#,
        ] {
            assert!(job_from_json(&parse(bad).unwrap()).is_err(), "{bad}");
        }
        assert!(sweep_from_json(&parse("{}").unwrap()).is_err());
    }
}

//! Experiment job specifications and outcomes.

use std::fmt;
use std::sync::OnceLock;

use hfs_core::kernel::KernelPair;
use hfs_core::{Checker, Machine, MachineConfig, RunResult, SimError};
use hfs_sim::CancelToken;
use hfs_trace::Tracer;

/// Default per-job simulated-cycle budget; hitting it is a harness or
/// model bug, surfaced as [`JobOutcome::Timeout`] by the watchdog.
pub const DEFAULT_MAX_CYCLES: u64 = 500_000_000;

/// Cache-schema revision. Bump when the serialized result format or the
/// key derivation changes; old entries then miss and are re-simulated.
pub const CACHE_SCHEMA: u32 = 1;

/// How the machine is assembled for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Dual-core producer/consumer pipeline ([`Machine::new_pipeline`]).
    Pipeline,
    /// Fused single-threaded baseline ([`Machine::new_single`]).
    Single,
    /// `n` independent copies of the pair on a `2n`-core CMP
    /// ([`Machine::new_multi_pipeline`]).
    Multi(u8),
}

/// One unit of experiment work: a kernel pair under a machine
/// configuration, with a watchdog budget and retry policy.
///
/// The job's [cache key](Job::key) is derived from the *content* that
/// determines the simulation result (pair, config, mode, cycle budget) —
/// never from the display label — so identical runs shared between
/// figures (e.g. HEAVYWT baselines) deduplicate in the cache.
#[derive(Debug, Clone)]
pub struct Job {
    /// Display label, e.g. `"fig7/wc/HEAVYWT"`. Not part of the key.
    pub label: String,
    /// The workload, with iteration scaling already applied.
    pub pair: KernelPair,
    /// Machine configuration (includes the design point and seed).
    pub cfg: MachineConfig,
    /// Machine assembly mode.
    pub mode: Mode,
    /// Watchdog budget in simulated cycles.
    pub max_cycles: u64,
    /// Re-execution attempts after a transient harness failure.
    pub retries: u32,
    /// Whether to attach a metrics-digesting tracer so the result carries
    /// a [`hfs_trace::MetricsReport`]. Part of the cache key (traced and
    /// untraced results serialize differently).
    pub metrics: bool,
    // Lazily computed cache key. Populated on the first `key()` call and
    // reused by every later cache/dedup/shard lookup; the `with_*`
    // builders reset it because they change keyed content. Cloning
    // preserves it (a clone has identical content, hence an identical
    // key). Callers mutating keyed pub fields *after* calling `key()`
    // must go through the builders — in-crate construction sites use
    // struct-update over fresh jobs, where the memo is still unset.
    key_memo: OnceLock<String>,
}

impl Job {
    /// A dual-core pipeline job.
    pub fn pipeline(label: impl Into<String>, pair: KernelPair, cfg: MachineConfig) -> Job {
        Job {
            label: label.into(),
            pair,
            cfg,
            mode: Mode::Pipeline,
            max_cycles: DEFAULT_MAX_CYCLES,
            retries: 0,
            metrics: false,
            key_memo: OnceLock::new(),
        }
    }

    /// A fused single-threaded job.
    pub fn single(label: impl Into<String>, pair: KernelPair, cfg: MachineConfig) -> Job {
        Job {
            mode: Mode::Single,
            ..Job::pipeline(label, pair, cfg)
        }
    }

    /// Rebuilds a job from its raw parts (the spec-codec entry point).
    /// Keeps the deserializer honest about every keyed field without
    /// exposing the key memo outside this module.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        label: String,
        pair: KernelPair,
        cfg: MachineConfig,
        mode: Mode,
        max_cycles: u64,
        retries: u32,
        metrics: bool,
    ) -> Job {
        Job {
            label,
            pair,
            cfg,
            mode,
            max_cycles,
            retries,
            metrics,
            key_memo: OnceLock::new(),
        }
    }

    /// A multi-pipeline job running `pairs` copies of the workload.
    pub fn multi(label: impl Into<String>, pair: KernelPair, cfg: MachineConfig, pairs: u8) -> Job {
        Job {
            mode: Mode::Multi(pairs),
            ..Job::pipeline(label, pair, cfg)
        }
    }

    /// Overrides the watchdog cycle budget.
    #[must_use]
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Job {
        self.max_cycles = max_cycles;
        self.key_memo = OnceLock::new();
        self
    }

    /// Overrides the retry count.
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Job {
        self.retries = retries;
        self.key_memo = OnceLock::new();
        self
    }

    /// Requests a metrics report in the result.
    #[must_use]
    pub fn with_metrics(mut self, metrics: bool) -> Job {
        self.metrics = metrics;
        self.key_memo = OnceLock::new();
        self
    }

    /// The stable, content-derived cache key (16 hex digits).
    ///
    /// Hashes everything that determines the simulation outcome: the
    /// kernel pair (kernels, queues, iterations), the full machine
    /// configuration (memory hierarchy, core, design point, seed), the
    /// assembly mode, the cycle budget, and [`CACHE_SCHEMA`].
    ///
    /// Computed once per job (the Debug-format canonicalization of the
    /// pair + config dominates the cost) and memoized: cache lookups,
    /// dedup, and worker sharding all reuse the first computation.
    pub fn key(&self) -> String {
        self.key_ref().to_string()
    }

    /// The memoized cache key as a borrowed string — the allocation-free
    /// spelling of [`Job::key`] for hot paths that only compare or hash.
    pub fn key_ref(&self) -> &str {
        self.key_memo.get_or_init(|| {
            let mut canonical = format!(
                "schema={CACHE_SCHEMA}|mode={:?}|max_cycles={}|pair={:?}|cfg={:?}",
                self.mode, self.max_cycles, self.pair, self.cfg
            );
            // Appended only when set, so pre-existing cache entries for
            // untraced jobs keep their keys.
            if self.metrics {
                canonical.push_str("|metrics=1");
            }
            format!("{:016x}", fnv1a64(canonical.as_bytes()))
        })
    }
}

/// 64-bit FNV-1a, the workspace's content hash for cache keys.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The structured result of attempting one job: success, a simulation
/// error (config/deadlock/verification), or a watchdog timeout. Replaces
/// the seed harness's `panic!`-on-error behavior so one bad kernel no
/// longer kills a whole figure.
#[derive(Debug, Clone)]
pub enum JobOutcome {
    /// The run completed; full statistics attached.
    Ok(RunResult),
    /// The simulator reported an error (after exhausting retries).
    SimError(String),
    /// The machine checker (`HFS_CHECK=1`) found an invariant violation
    /// or a queue-accounting error. Never retried: the simulator is
    /// deterministic, so a checked failure reproduces — it is a model
    /// bug to fix, not a transient to absorb.
    CheckFailed(String),
    /// The run exceeded its cycle budget.
    Timeout {
        /// The budget that was exceeded.
        max_cycles: u64,
    },
    /// The run was abandoned because its cancellation token fired (e.g.
    /// every client waiting on it disconnected). Never cached and never
    /// retried here — the owner decides whether to re-enqueue.
    Cancelled,
    /// The worker *process* executing the job died repeatedly (crash,
    /// kill, or broken pipe) and the dispatcher exhausted its requeue
    /// budget. The message records what the dispatcher observed. Never
    /// cached: the next submission gets a fresh worker.
    WorkerDied(String),
}

impl JobOutcome {
    /// The run result, if the job succeeded.
    pub fn ok(&self) -> Option<&RunResult> {
        match self {
            JobOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the job succeeded.
    pub fn is_ok(&self) -> bool {
        matches!(self, JobOutcome::Ok(_))
    }

    /// Short status tag: `"ok"`, `"sim_error"`, `"check_failed"`,
    /// `"timeout"`, `"cancelled"`, or `"worker_died"`.
    pub fn status(&self) -> &'static str {
        match self {
            JobOutcome::Ok(_) => "ok",
            JobOutcome::SimError(_) => "sim_error",
            JobOutcome::CheckFailed(_) => "check_failed",
            JobOutcome::Timeout { .. } => "timeout",
            JobOutcome::Cancelled => "cancelled",
            JobOutcome::WorkerDied(_) => "worker_died",
        }
    }
}

impl fmt::Display for JobOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobOutcome::Ok(r) => write!(f, "ok ({} cycles)", r.cycles),
            JobOutcome::SimError(e) => write!(f, "sim error: {e}"),
            JobOutcome::CheckFailed(e) => write!(f, "machine check failed: {e}"),
            JobOutcome::Timeout { max_cycles } => {
                write!(f, "timeout: exceeded {max_cycles} cycles")
            }
            JobOutcome::Cancelled => write!(f, "cancelled"),
            JobOutcome::WorkerDied(e) => write!(f, "worker died: {e}"),
        }
    }
}

/// Runs `job` once, propagating the simulator's fallible API.
///
/// # Errors
///
/// Any [`SimError`] from machine construction or the run itself.
pub fn execute_once(job: &Job) -> Result<RunResult, SimError> {
    let tracer = if job.metrics {
        Tracer::metrics_only()
    } else {
        Tracer::disabled()
    };
    execute_once_with(job, &tracer)
}

/// Runs `job` once with an explicit tracer attached to the machine —
/// the entry point for callers that want the recorded event stream (the
/// engine's `HFS_TRACE_DIR` export, the fig binaries' `--trace` demo).
///
/// # Errors
///
/// Any [`SimError`] from machine construction or the run itself.
pub fn execute_once_with(job: &Job, tracer: &Tracer) -> Result<RunResult, SimError> {
    execute_once_instrumented(job, tracer, &Checker::disabled())
}

/// Runs `job` once with both a tracer and a machine-check handle. A
/// disabled `checker` leaves the machine's own (env-derived) checker in
/// place, so `HFS_CHECK=1` keeps working through every harness entry
/// point; an enabled one overrides it — the hook the fault-injection
/// tests use to arm [`hfs_core::Mutation`]s through the job path.
///
/// # Errors
///
/// Any [`SimError`] from machine construction or the run itself.
pub fn execute_once_instrumented(
    job: &Job,
    tracer: &Tracer,
    checker: &Checker,
) -> Result<RunResult, SimError> {
    execute_once_cancellable(job, tracer, checker, None)
}

/// The fully-instrumented single-run entry point: tracer, machine-check
/// handle, and an optional cancellation token polled once per simulated
/// cycle. The `hfs-serve` dispatcher uses the token to abandon jobs
/// whose waiting clients have all disconnected.
///
/// # Errors
///
/// Any [`SimError`] from machine construction or the run itself,
/// including [`SimError::Cancelled`] when the token fires mid-run.
pub fn execute_once_cancellable(
    job: &Job,
    tracer: &Tracer,
    checker: &Checker,
    cancel: Option<&CancelToken>,
) -> Result<RunResult, SimError> {
    let mut machine = match job.mode {
        Mode::Pipeline => Machine::new_pipeline(&job.cfg, &job.pair)?,
        Mode::Single => Machine::new_single(&job.cfg, &job.pair)?,
        Mode::Multi(n) => {
            let pairs: Vec<KernelPair> = (0..n).map(|_| job.pair.clone()).collect();
            Machine::new_multi_pipeline(&job.cfg, &pairs)?
        }
    };
    machine.set_tracer(tracer.clone());
    if checker.is_enabled() {
        machine.set_checker(checker.clone());
    }
    if let Some(c) = cancel {
        machine.set_cancel_token(c.clone());
    }
    machine.run(job.max_cycles)
}

/// Runs `job` with its retry policy, classifying failures.
///
/// Timeouts and machine-check violations are never retried (the
/// simulator is deterministic, so both will recur); other errors are
/// retried up to `max(job.retries, default_retries)` times to absorb
/// transient harness issues.
pub fn execute(job: &Job, default_retries: u32) -> JobOutcome {
    execute_checked(job, default_retries, &Checker::disabled())
}

/// [`execute`] with an explicit machine-check handle (see
/// [`execute_once_instrumented`] for how a disabled handle behaves).
pub fn execute_checked(job: &Job, default_retries: u32, checker: &Checker) -> JobOutcome {
    execute_with(job, default_retries, checker, None)
}

/// [`execute`] with a cancellation token: the `hfs-serve` worker entry
/// point. A fired token surfaces as [`JobOutcome::Cancelled`] without
/// consuming the retry budget.
pub fn execute_cancellable(job: &Job, default_retries: u32, cancel: &CancelToken) -> JobOutcome {
    execute_with(job, default_retries, &Checker::disabled(), Some(cancel))
}

/// [`execute`] with an optional cancellation token, additionally
/// reporting how many *re*-executions the retry policy consumed (0 when
/// the first attempt settled the outcome). The telemetry entry point:
/// the engine and the `hfs-serve` dispatcher feed the count into their
/// retry counters without changing what gets cached or returned.
pub fn execute_counted(
    job: &Job,
    default_retries: u32,
    cancel: Option<&CancelToken>,
) -> (JobOutcome, u32) {
    execute_with_counted(job, default_retries, &Checker::disabled(), cancel)
}

fn execute_with(
    job: &Job,
    default_retries: u32,
    checker: &Checker,
    cancel: Option<&CancelToken>,
) -> JobOutcome {
    execute_with_counted(job, default_retries, checker, cancel).0
}

fn execute_with_counted(
    job: &Job,
    default_retries: u32,
    checker: &Checker,
    cancel: Option<&CancelToken>,
) -> (JobOutcome, u32) {
    let attempts = 1 + job.retries.max(default_retries);
    let mut last_err = String::new();
    for attempt in 0..attempts {
        // A fresh tracer per attempt: tracer clones share one buffer, so
        // reusing a tracer across a retry would fold the failed attempt's
        // partial event stream into the succeeding run's metrics report
        // (double-counted progress totals).
        let tracer = if job.metrics {
            Tracer::metrics_only()
        } else {
            Tracer::disabled()
        };
        let outcome = match execute_once_cancellable(job, &tracer, checker, cancel) {
            Ok(r) => JobOutcome::Ok(r),
            Err(SimError::Timeout { max_cycles }) => JobOutcome::Timeout { max_cycles },
            Err(SimError::Verification(msg)) => JobOutcome::CheckFailed(msg),
            Err(SimError::Cancelled { .. }) => JobOutcome::Cancelled,
            Err(e) => {
                last_err = e.to_string();
                continue;
            }
        };
        return (outcome, attempt);
    }
    (JobOutcome::SimError(last_err), attempts - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfs_core::DesignPoint;

    fn demo_job(iters: u64) -> Job {
        Job::pipeline(
            "test/demo",
            KernelPair::simple("demo", 3, iters),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        )
    }

    #[test]
    fn key_is_stable_and_label_independent() {
        let a = demo_job(50);
        let mut b = demo_job(50);
        b.label = "something/else".into();
        assert_eq!(a.key(), b.key());
        assert_eq!(a.key().len(), 16);
    }

    #[test]
    fn key_memo_survives_clone_and_resets_on_builders() {
        let job = demo_job(50);
        let first = job.key();
        // Memoized: later calls return the identical string without
        // recomputation (same pointer into the OnceLock).
        assert_eq!(job.key_ref() as *const str, job.key_ref() as *const str);
        assert_eq!(job.key(), first);
        // A clone carries identical content, so carrying the memo over
        // is sound.
        assert_eq!(job.clone().key(), first);
        // Builders change keyed content and must invalidate the memo
        // even when the source job already computed its key.
        let rebudgeted = job.clone().with_max_cycles(1234);
        assert_ne!(rebudgeted.key(), first);
        let traced = job.clone().with_metrics(true);
        assert_ne!(traced.key(), first);
    }

    #[test]
    fn key_depends_on_content() {
        let base = demo_job(50);
        assert_ne!(base.key(), demo_job(51).key(), "iterations change the key");
        let other_design = Job {
            cfg: MachineConfig::itanium2_cmp(DesignPoint::existing()),
            ..demo_job(50)
        };
        assert_ne!(base.key(), other_design.key(), "design changes the key");
        let single = Job {
            mode: Mode::Single,
            ..demo_job(50)
        };
        assert_ne!(base.key(), single.key(), "mode changes the key");
        let budget = demo_job(50).with_max_cycles(1_000);
        assert_ne!(base.key(), budget.key(), "budget changes the key");
    }

    #[test]
    fn metrics_flag_changes_key_and_attaches_report() {
        let base = demo_job(40);
        let traced = demo_job(40).with_metrics(true);
        assert_ne!(base.key(), traced.key(), "metrics jobs cache separately");
        let plain = execute(&base, 0);
        let with = execute(&traced, 0);
        let plain = plain.ok().expect("plain run ok");
        let with = with.ok().expect("traced run ok");
        assert!(plain.metrics.is_none());
        let m = with.metrics.as_ref().expect("metrics attached");
        assert_eq!(m.get_counter("machine.cycles"), Some(with.cycles));
        assert!(m.get_counter("trace.produce").unwrap_or(0) > 0);
        assert!(m.get_histogram("consume_to_use_cycles").unwrap().count > 0);
        // Tracing must not perturb the simulation itself.
        assert_eq!(plain.cycles, with.cycles);
    }

    #[test]
    fn execute_completes_a_small_pipeline() {
        let out = execute(&demo_job(40), 0);
        let r = out.ok().expect("run succeeds");
        assert_eq!(r.iterations, 40);
        assert!(out.is_ok());
        assert_eq!(out.status(), "ok");
    }

    #[test]
    fn watchdog_classifies_budget_overrun() {
        let job = demo_job(10_000).with_max_cycles(100);
        match execute(&job, 3) {
            JobOutcome::Timeout { max_cycles } => assert_eq!(max_cycles, 100),
            other => panic!("expected timeout, got {other}"),
        }
    }

    #[test]
    fn check_violations_fail_loudly_and_skip_retries() {
        use hfs_core::{CheckLevel, Mutation};
        // A machine-check violation must surface as its own outcome —
        // not be misfiled as a generic sim error, not run to timeout,
        // and not be retried (it is deterministic).
        let checker = hfs_core::Checker::with_level(CheckLevel::Full);
        checker.set_mutation(Mutation::DoubleGrantBus);
        let job = Job {
            cfg: MachineConfig::itanium2_cmp(DesignPoint::existing()),
            ..demo_job(200)
        };
        match execute_checked(&job, 3, &checker) {
            JobOutcome::CheckFailed(e) => {
                assert!(e.contains("bus.double_grant"), "{e}");
            }
            other => panic!("expected check failure, got {other}"),
        }
        // The same job under a clean checker succeeds and reports it.
        let clean = hfs_core::Checker::with_level(CheckLevel::Full);
        let out = execute_checked(&job, 0, &clean);
        assert_eq!(out.status(), "ok");
        assert!(out.ok().expect("clean run ok").checked);
    }

    #[test]
    fn retry_attempts_never_share_a_tracer() {
        // The hazard this pins: tracer clones share one buffer, so a
        // tracer reused across two runs folds both event streams into the
        // second report — the HFS_RETRIES double-count bug.
        let job = demo_job(40).with_metrics(true);
        let shared = Tracer::metrics_only();
        let first = execute_once_with(&job, &shared).unwrap();
        let second = execute_once_with(&job, &shared).unwrap();
        let p1 = first.metrics.unwrap().get_counter("trace.produce").unwrap();
        let p2 = second
            .metrics
            .unwrap()
            .get_counter("trace.produce")
            .unwrap();
        assert_eq!(p2, 2 * p1, "a shared buffer double-counts");
        // The retry path allocates a fresh tracer per attempt, so even
        // with a retry budget the report carries single-run totals.
        let out = execute(&demo_job(40).with_metrics(true).with_retries(3), 2);
        let r = out.ok().expect("retried run ok");
        let m = r.metrics.as_ref().expect("metrics attached");
        assert_eq!(m.get_counter("trace.produce"), Some(p1));
        assert!(m.get_histogram("consume_to_use_cycles").unwrap().count <= p1);
    }

    #[test]
    fn cancellation_classifies_and_skips_retries() {
        use hfs_sim::CancelToken;
        let token = CancelToken::new();
        token.cancel();
        // A pre-fired token aborts at cycle 0, regardless of retries.
        let out = execute_cancellable(&demo_job(5_000).with_retries(5), 3, &token);
        assert_eq!(out.status(), "cancelled");
        assert!(!out.is_ok());
        assert!(out.to_string().contains("cancelled"));
        // An unfired token changes nothing.
        let fresh = CancelToken::new();
        let out = execute_cancellable(&demo_job(40), 0, &fresh);
        assert_eq!(out.ok().expect("runs to completion").iterations, 40);
    }

    #[test]
    fn config_errors_become_sim_errors() {
        // 5 pairs exceed the 8-core bus model.
        let job = Job::multi(
            "test/too-many",
            KernelPair::simple("demo", 2, 10),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
            5,
        );
        match execute(&job, 1) {
            JobOutcome::SimError(e) => assert!(e.contains("pipelines"), "{e}"),
            other => panic!("expected sim error, got {other}"),
        }
    }

    #[test]
    fn single_and_multi_modes_execute() {
        let single = Job::single(
            "test/single",
            KernelPair::simple("demo", 2, 30),
            MachineConfig::itanium2_single(),
        );
        let r = execute(&single, 0);
        assert_eq!(r.ok().expect("single ok").cores.len(), 1);

        let multi = Job::multi(
            "test/multi",
            KernelPair::simple("demo", 2, 30),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
            2,
        );
        let r = execute(&multi, 0);
        assert_eq!(r.ok().expect("multi ok").cores.len(), 4);
    }
}

//! The parallel experiment-execution engine.
//!
//! An [`Engine`] runs batches of [`Job`]s on a `std::thread` worker pool
//! fed by a shared index queue. Results are gathered into submission
//! order, so experiment output is byte-identical at any worker count;
//! only the (stderr) progress stream interleaves differently.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use hfs_core::SimError;
use hfs_obs::{Counter, HistogramMetric, Registry};
use hfs_trace::{chrome_trace_json, MetricsReport, Tracer};

use crate::cache::Cache;
use crate::job::{execute_counted, execute_once_with, Job, JobOutcome};
use crate::json::Json;
use crate::ser::outcome_to_json;

/// Worker-count environment variable (`HFS_JOBS`).
pub const ENV_JOBS: &str = "HFS_JOBS";
/// Cache-directory environment variable (`HFS_CACHE_DIR`).
pub const ENV_CACHE_DIR: &str = "HFS_CACHE_DIR";
/// Set to disable the result cache entirely (`HFS_NO_CACHE=1`).
pub const ENV_NO_CACHE: &str = "HFS_NO_CACHE";
/// Default retry count for failed jobs (`HFS_RETRIES`).
pub const ENV_RETRIES: &str = "HFS_RETRIES";
/// Artifact output directory (`HFS_RESULTS_DIR`).
pub const ENV_RESULTS_DIR: &str = "HFS_RESULTS_DIR";
/// Set to suppress the per-job progress stream (`HFS_NO_PROGRESS=1`).
pub const ENV_NO_PROGRESS: &str = "HFS_NO_PROGRESS";
/// Set to attach metrics reports to every job result (`HFS_METRICS=1`).
pub const ENV_METRICS: &str = "HFS_METRICS";
/// Directory for per-job Chrome trace-event exports (`HFS_TRACE_DIR`).
/// Setting it implies `HFS_METRICS=1`.
pub const ENV_TRACE_DIR: &str = "HFS_TRACE_DIR";

fn env_flag(name: &str) -> bool {
    std::env::var_os(name).is_some_and(|v| v != "0" && !v.is_empty())
}

/// Live counters aggregated across every batch an engine runs.
#[derive(Debug, Default)]
struct EngineCounters {
    jobs: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    failures: AtomicU64,
    sim_cycles: AtomicU64,
    exec_millis: AtomicU64,
}

/// Upper bucket (milliseconds) for the engine's latency histograms;
/// slower observations land in the overflow bucket and clamp the
/// percentiles to this value.
const LATENCY_HISTOGRAM_MAX_MS: usize = 60_000;

/// The engine's job-lifecycle telemetry: an instance-scoped
/// [`Registry`] (so parallel tests keep exact counts) plus the handles
/// the hot path uses. Purely observational — nothing here feeds cache
/// keys or artifacts.
#[derive(Debug)]
struct EngineObs {
    registry: Registry,
    queue_wait_ms: HistogramMetric,
    exec_wall_ms: HistogramMetric,
    retries: Counter,
    timeouts: Counter,
}

impl Default for EngineObs {
    fn default() -> EngineObs {
        let registry = Registry::new();
        EngineObs {
            queue_wait_ms: registry.histogram("hfs_job_queue_wait_ms", LATENCY_HISTOGRAM_MAX_MS),
            exec_wall_ms: registry.histogram("hfs_job_exec_wall_ms", LATENCY_HISTOGRAM_MAX_MS),
            retries: registry.counter("hfs_job_retries_total"),
            timeouts: registry.counter("hfs_job_timeouts_total"),
            registry,
        }
    }
}

/// A snapshot of an engine's aggregate counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs processed (hits + misses).
    pub jobs: u64,
    /// Jobs answered from the result cache.
    pub cache_hits: u64,
    /// Jobs actually simulated.
    pub cache_misses: u64,
    /// Jobs whose final outcome was not `Ok`.
    pub failures: u64,
    /// Total simulated cycles across executed (non-cached) jobs.
    pub sim_cycles: u64,
    /// Wall-clock milliseconds spent executing jobs (summed over
    /// workers, so this can exceed elapsed time when running parallel).
    pub exec_millis: u64,
}

/// The parallel experiment-execution engine.
#[derive(Debug)]
pub struct Engine {
    workers: usize,
    cache: Option<Cache>,
    results_dir: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    metrics: bool,
    default_retries: u32,
    progress: bool,
    counters: EngineCounters,
    obs: EngineObs,
}

impl Engine {
    /// A quiet engine with `workers` threads, no cache, and no artifact
    /// directory — the configuration tests want.
    pub fn new(workers: usize) -> Engine {
        Engine {
            workers: workers.max(1),
            cache: None,
            results_dir: None,
            trace_dir: None,
            metrics: false,
            default_retries: 0,
            progress: false,
            counters: EngineCounters::default(),
            obs: EngineObs::default(),
        }
    }

    /// The production configuration, honoring the `HFS_*` environment:
    /// `HFS_JOBS` workers (default: available parallelism), a result
    /// cache in `HFS_CACHE_DIR` (default `results/cache`, disable with
    /// `HFS_NO_CACHE=1`), artifacts in `HFS_RESULTS_DIR` (default
    /// `results`), `HFS_RETRIES` retries (default 1), and a progress
    /// stream on stderr unless `HFS_NO_PROGRESS=1`. `HFS_METRICS=1`
    /// attaches a metrics report to every result; `HFS_TRACE_DIR=<dir>`
    /// additionally writes a Chrome trace-event JSON per executed job.
    pub fn from_env() -> Engine {
        let workers = std::env::var(ENV_JOBS)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        let cache = if env_flag(ENV_NO_CACHE) {
            None
        } else {
            let dir = std::env::var(ENV_CACHE_DIR).unwrap_or_else(|_| "results/cache".to_string());
            Some(Cache::new(dir))
        };
        let results_dir = Some(PathBuf::from(
            std::env::var(ENV_RESULTS_DIR).unwrap_or_else(|_| "results".to_string()),
        ));
        let default_retries = std::env::var(ENV_RETRIES)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        Engine {
            workers,
            cache,
            results_dir,
            trace_dir: std::env::var_os(ENV_TRACE_DIR)
                .filter(|v| !v.is_empty())
                .map(PathBuf::from),
            metrics: env_flag(ENV_METRICS),
            default_retries,
            progress: !env_flag(ENV_NO_PROGRESS),
            counters: EngineCounters::default(),
            obs: EngineObs::default(),
        }
    }

    /// Replaces the cache directory.
    #[must_use]
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Engine {
        self.cache = Some(Cache::new(dir));
        self
    }

    /// Sets the artifact output directory (written by
    /// [`Engine::run_batch`] after each batch).
    #[must_use]
    pub fn with_results_dir(mut self, dir: impl Into<PathBuf>) -> Engine {
        self.results_dir = Some(dir.into());
        self
    }

    /// Enables or disables the stderr progress stream.
    #[must_use]
    pub fn with_progress(mut self, on: bool) -> Engine {
        self.progress = on;
        self
    }

    /// Sets the default retry count applied to every job.
    #[must_use]
    pub fn with_default_retries(mut self, retries: u32) -> Engine {
        self.default_retries = retries;
        self
    }

    /// Attaches metrics reports to every job this engine runs.
    #[must_use]
    pub fn with_metrics(mut self, on: bool) -> Engine {
        self.metrics = on;
        self
    }

    /// Writes a Chrome trace-event JSON for every *executed* (non-cached)
    /// job into `dir`, named `<batch>__<label>.trace.json`. Implies
    /// metrics.
    #[must_use]
    pub fn with_trace_dir(mut self, dir: impl Into<PathBuf>) -> Engine {
        self.trace_dir = Some(dir.into());
        self
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Whether job results will carry metrics reports (set explicitly or
    /// implied by a trace directory).
    pub fn metrics_enabled(&self) -> bool {
        self.metrics || self.trace_dir.is_some()
    }

    /// The directory batch artifacts are written to, if any.
    pub fn results_dir(&self) -> Option<&Path> {
        self.results_dir.as_deref()
    }

    /// A snapshot of the aggregate counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            jobs: self.counters.jobs.load(Ordering::Relaxed),
            cache_hits: self.counters.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.counters.cache_misses.load(Ordering::Relaxed),
            failures: self.counters.failures.load(Ordering::Relaxed),
            sim_cycles: self.counters.sim_cycles.load(Ordering::Relaxed),
            exec_millis: self.counters.exec_millis.load(Ordering::Relaxed),
        }
    }

    /// One line summarizing everything this engine has processed.
    pub fn summary(&self) -> String {
        let s = self.stats();
        format!(
            "harness: {} jobs ({} cache hits, {} simulated, {} failed), \
             {} simulated cycles, {:.1}s execute time, {} workers",
            s.jobs,
            s.cache_hits,
            s.cache_misses,
            s.failures,
            s.sim_cycles,
            s.exec_millis as f64 / 1000.0,
            self.workers,
        )
    }

    /// Runs `jobs` to completion on the worker pool and returns their
    /// records in submission order. Every job runs even if others fail —
    /// failures surface in the records (and later via
    /// [`Batch::expect_results`]), so completed work lands in the cache
    /// before anyone panics. If a results directory is configured, the
    /// batch artifact `<dir>/<name>.json` is written before returning.
    pub fn run_batch(&self, name: &str, jobs: Vec<Job>) -> Batch {
        // Metrics-carrying jobs key (and cache) separately from plain
        // ones, so flipping `HFS_METRICS` never corrupts either cache
        // population.
        let jobs: Vec<Job> = if self.metrics_enabled() {
            jobs.into_iter().map(|j| j.with_metrics(true)).collect()
        } else {
            jobs
        };
        let total = jobs.len();
        let next = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let submitted = Instant::now();
        let slots: Vec<Mutex<Option<Record>>> = (0..total).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(total.max(1)) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let record = self.run_one(name, &jobs[i], &done, total, submitted);
                    *slots[i].lock().unwrap() = Some(record);
                });
            }
        });
        let records: Vec<Record> = slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("worker filled every slot"))
            .collect();
        let batch = Batch {
            name: name.to_string(),
            records,
        };
        if let Some(dir) = &self.results_dir {
            if let Err(e) = batch.write_artifact(dir) {
                hfs_obs::error(
                    "harness",
                    "artifact_write_failed",
                    &[("batch", name.into()), ("error", e.to_string().into())],
                );
            }
        }
        batch
    }

    fn run_one(
        &self,
        batch: &str,
        job: &Job,
        done: &AtomicUsize,
        total: usize,
        submitted: Instant,
    ) -> Record {
        let key = job.key();
        // Queue wait: batch submission → this worker picking the job up.
        self.obs
            .queue_wait_ms
            .observe(submitted.elapsed().as_millis() as u64);
        let started = Instant::now();
        let (outcome, cached) = match self.cache.as_ref().and_then(|c| c.load(&key)) {
            Some(hit) => (hit, true),
            None => {
                let outcome = match &self.trace_dir {
                    Some(dir) => self.execute_traced(batch, job, dir),
                    None => {
                        let (outcome, retries) = execute_counted(job, self.default_retries, None);
                        self.obs.retries.add(u64::from(retries));
                        outcome
                    }
                };
                if let Some(cache) = &self.cache {
                    cache.store(&key, &outcome);
                }
                (outcome, false)
            }
        };
        let wall_millis = started.elapsed().as_millis() as u64;

        self.counters.jobs.fetch_add(1, Ordering::Relaxed);
        if cached {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
            self.counters
                .exec_millis
                .fetch_add(wall_millis, Ordering::Relaxed);
            self.obs.exec_wall_ms.observe(wall_millis);
            if let Some(r) = outcome.ok() {
                self.counters
                    .sim_cycles
                    .fetch_add(r.cycles, Ordering::Relaxed);
            }
        }
        if !outcome.is_ok() {
            self.counters.failures.fetch_add(1, Ordering::Relaxed);
            if matches!(outcome, JobOutcome::Timeout { .. }) {
                self.obs.timeouts.inc();
            }
        }

        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
        if self.progress {
            // Labels conventionally start with the batch name; don't
            // print it twice. One structured line per job, at info level
            // — `HFS_LOG=warn` (or `HFS_NO_PROGRESS=1`) silences it.
            let label = job
                .label
                .strip_prefix(batch)
                .and_then(|rest| rest.strip_prefix('/'))
                .unwrap_or(&job.label);
            hfs_obs::info(
                "harness",
                "job_done",
                &[
                    ("finished", finished.into()),
                    ("total", total.into()),
                    ("batch", batch.into()),
                    ("label", label.into()),
                    ("status", outcome.status().into()),
                    ("outcome", outcome.to_string().into()),
                    ("cached", cached.into()),
                    ("wall_ms", wall_millis.into()),
                ],
            );
        }
        Record {
            label: job.label.clone(),
            key,
            cached,
            wall_millis,
            outcome,
        }
    }

    /// Runs one job with a recording tracer and exports its event stream
    /// as Chrome trace-event JSON. Retries are skipped on this path: the
    /// simulator is deterministic, so a traced failure would recur.
    fn execute_traced(&self, batch: &str, job: &Job, dir: &Path) -> JobOutcome {
        let tracer = Tracer::recording();
        let outcome = match execute_once_with(job, &tracer) {
            Ok(r) => JobOutcome::Ok(r),
            Err(SimError::Timeout { max_cycles }) => JobOutcome::Timeout { max_cycles },
            Err(SimError::Verification(msg)) => JobOutcome::CheckFailed(msg),
            Err(e) => JobOutcome::SimError(e.to_string()),
        };
        let json = chrome_trace_json(&tracer.take_events());
        let path = dir.join(format!(
            "{}__{}.trace.json",
            sanitize_component(batch),
            sanitize_component(&job.label)
        ));
        if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, json)) {
            hfs_obs::error(
                "harness",
                "trace_write_failed",
                &[
                    ("path", path.display().to_string().into()),
                    ("error", e.to_string().into()),
                ],
            );
        }
        outcome
    }

    /// The engine's live metric registry: job queue-wait and
    /// execution-wall histograms plus retry/timeout counters, exposable
    /// as Prometheus text via [`Registry::render_prometheus`].
    pub fn registry(&self) -> &Registry {
        &self.obs.registry
    }

    /// The harness's own execution metrics in the same [`MetricsReport`]
    /// shape the simulator emits, so one toolchain reads both. Includes
    /// the lifecycle telemetry: retry/timeout counters and queue-wait /
    /// execution-wall histogram summaries.
    pub fn metrics_report(&self) -> MetricsReport {
        let s = self.stats();
        let mut m = MetricsReport::new();
        m.counter("harness.workers", self.workers as u64);
        m.counter("harness.jobs", s.jobs);
        m.counter("harness.cache_hits", s.cache_hits);
        m.counter("harness.cache_misses", s.cache_misses);
        m.counter("harness.failures", s.failures);
        m.counter("harness.sim_cycles", s.sim_cycles);
        m.counter("harness.exec_millis", s.exec_millis);
        m.counter("harness.retries", self.obs.retries.get());
        m.counter("harness.timeouts", self.obs.timeouts.get());
        m.histograms.push((
            "harness.queue_wait_ms".to_string(),
            self.obs.queue_wait_ms.summary(),
        ));
        m.histograms.push((
            "harness.exec_wall_ms".to_string(),
            self.obs.exec_wall_ms.summary(),
        ));
        m
    }
}

/// Makes a batch name or job label safe as a file-name component.
fn sanitize_component(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// One job's execution record within a batch.
#[derive(Debug, Clone)]
pub struct Record {
    /// The job's display label.
    pub label: String,
    /// Content-derived cache key.
    pub key: String,
    /// Whether the outcome came from the cache.
    pub cached: bool,
    /// Wall-clock milliseconds this job took (≈0 for cache hits).
    pub wall_millis: u64,
    /// The job's outcome.
    pub outcome: JobOutcome,
}

/// The ordered results of one [`Engine::run_batch`] call.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Batch/experiment name (artifact file stem).
    pub name: String,
    /// Per-job records, in submission order.
    pub records: Vec<Record>,
}

impl Batch {
    /// Iterates the outcomes in submission order.
    pub fn outcomes(&self) -> impl Iterator<Item = &JobOutcome> {
        self.records.iter().map(|r| &r.outcome)
    }

    /// Whether every job in the batch succeeded.
    pub fn all_ok(&self) -> bool {
        self.records.iter().all(|r| r.outcome.is_ok())
    }

    /// Whether every outcome was served from the cache.
    pub fn all_cached(&self) -> bool {
        self.records.iter().all(|r| r.cached)
    }

    /// Unwraps every outcome into its [`hfs_core::RunResult`].
    ///
    /// # Panics
    ///
    /// Panics if any job failed, listing *every* failing label and
    /// reason — after the whole batch has executed, so completed work is
    /// already cached and a re-run resumes from the failures alone.
    pub fn expect_results(&self) -> Vec<hfs_core::RunResult> {
        let failures: Vec<String> = self
            .records
            .iter()
            .filter(|r| !r.outcome.is_ok())
            .map(|r| format!("  {}/{}: {}", self.name, r.label, r.outcome))
            .collect();
        assert!(
            failures.is_empty(),
            "{} job(s) failed in batch `{}`:\n{}",
            failures.len(),
            self.name,
            failures.join("\n")
        );
        self.records
            .iter()
            .map(|r| r.outcome.ok().expect("checked above").clone())
            .collect()
    }

    /// The machine-readable batch artifact. Deliberately excludes
    /// wall-clock times and cache flags so the bytes are identical across
    /// runs, worker counts, and warm/cold caches.
    pub fn artifact_json(&self) -> String {
        Json::obj(vec![
            ("experiment", Json::Str(self.name.clone())),
            ("schema", Json::U64(u64::from(crate::job::CACHE_SCHEMA))),
            (
                "jobs",
                Json::Arr(
                    self.records
                        .iter()
                        .map(|r| {
                            Json::obj(vec![
                                ("label", Json::Str(r.label.clone())),
                                ("key", Json::Str(r.key.clone())),
                                ("outcome", outcome_to_json(&r.outcome)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_pretty()
    }

    /// Writes the batch artifact as `<dir>/<name>.json`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures creating the directory or writing.
    pub fn write_artifact(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.name));
        std::fs::write(&path, self.artifact_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfs_core::kernel::KernelPair;
    use hfs_core::{DesignPoint, MachineConfig};

    fn job(work: u32, iters: u64) -> Job {
        Job::pipeline(
            format!("w{work}-i{iters}"),
            KernelPair::simple("demo", work, iters),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        )
    }

    #[test]
    fn batch_preserves_submission_order() {
        let engine = Engine::new(4);
        let jobs: Vec<Job> = (1..=6).map(|w| job(w, 20)).collect();
        let labels: Vec<String> = jobs.iter().map(|j| j.label.clone()).collect();
        let batch = engine.run_batch("order", jobs);
        let got: Vec<String> = batch.records.iter().map(|r| r.label.clone()).collect();
        assert_eq!(got, labels);
        assert!(batch.all_ok());
        assert_eq!(engine.stats().jobs, 6);
        assert_eq!(engine.stats().cache_misses, 6);
    }

    #[test]
    fn empty_batch_is_fine() {
        let batch = Engine::new(2).run_batch("empty", Vec::new());
        assert!(batch.all_ok());
        assert!(batch.expect_results().is_empty());
    }

    #[test]
    fn failures_do_not_stop_the_batch() {
        let engine = Engine::new(2);
        let jobs = vec![
            job(2, 20),
            job(2, 5_000).with_max_cycles(50), // watchdog trips
            job(3, 20),
        ];
        let batch = engine.run_batch("mixed", jobs);
        assert!(!batch.all_ok());
        let statuses: Vec<&str> = batch.outcomes().map(JobOutcome::status).collect();
        assert_eq!(statuses, vec!["ok", "timeout", "ok"]);
        assert_eq!(engine.stats().failures, 1);
    }

    #[test]
    #[should_panic(expected = "failed in batch")]
    fn expect_results_names_the_failure() {
        let batch = Engine::new(1).run_batch("boom", vec![job(2, 5_000).with_max_cycles(50)]);
        let _ = batch.expect_results();
    }

    #[test]
    fn summary_mentions_worker_count() {
        let engine = Engine::new(3);
        assert!(engine.summary().contains("3 workers"));
    }

    #[test]
    fn metrics_engine_attaches_reports() {
        let engine = Engine::new(2).with_metrics(true);
        assert!(engine.metrics_enabled());
        let batch = engine.run_batch("metrics", vec![job(2, 20), job(3, 20)]);
        for r in batch.expect_results() {
            let m = r.metrics.expect("metrics attached");
            assert_eq!(m.get_counter("machine.cycles"), Some(r.cycles));
        }
    }

    #[test]
    fn trace_dir_writes_a_chrome_trace_per_executed_job() {
        let dir = std::env::temp_dir().join(format!("hfs-trace-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        // Cache-less engine: a warm cache would skip execution and write
        // no traces.
        let engine = Engine::new(2).with_trace_dir(&dir);
        let batch = engine.run_batch("tr", vec![job(2, 20)]);
        assert!(batch.all_ok());
        let trace = dir.join("tr__w2-i20.trace.json");
        let text = std::fs::read_to_string(&trace).expect("trace file written");
        let parsed = crate::json::parse(&text).expect("trace is valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty());
        // Traced jobs also carry metrics.
        assert!(batch.records[0].outcome.ok().unwrap().metrics.is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_metrics_report_counts_jobs() {
        let engine = Engine::new(1);
        engine.run_batch("m", vec![job(2, 10)]);
        let m = engine.metrics_report();
        assert_eq!(m.get_counter("harness.jobs"), Some(1));
        assert_eq!(m.get_counter("harness.cache_misses"), Some(1));
        assert_eq!(m.get_counter("harness.workers"), Some(1));
    }

    #[test]
    fn sanitize_component_replaces_path_separators() {
        assert_eq!(sanitize_component("fig6/HEAVYWT d=1"), "fig6-HEAVYWT-d-1");
        assert_eq!(sanitize_component("ok-name_1.2"), "ok-name_1.2");
    }
}

//! Bounded in-memory hot layer in front of the on-disk result cache.
//!
//! A warm sweep against the plain disk cache still pays a file read, a
//! JSON parse, and a full [`RunResult`](hfs_core::RunResult)
//! reconstruction per job. The hot cache keeps recently touched
//! outcomes resident — both the decoded [`JobOutcome`] and its
//! serialized text — so repeat lookups cost one shard lock and a clone.
//!
//! Structure: 16 shards (the same first-hex-digit split as the disk
//! cache), each a `HashMap` keyed by content hash plus a
//! `BTreeMap<tick, key>` recency index. A global monotonic tick orders
//! touches across shards; eviction pops the lowest tick in the shard
//! until the shard is back under its slice of the byte budget
//! (`HFS_HOT_CACHE_MB`, split evenly 16 ways). Entries are immutable
//! and content-keyed, so write-through coherence with the disk cache is
//! trivial: the same key always maps to the same bytes, and an evicted
//! entry simply falls back to the disk copy.
//!
//! Only `Ok` outcomes are kept, mirroring the disk cache's persistence
//! rule. Byte accounting charges each entry its serialized length plus
//! a fixed per-entry overhead estimate, so the bound tracks real
//! memory, not just entry counts.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use hfs_obs::{Counter, Gauge, Registry};

use crate::job::JobOutcome;
use crate::ser::outcome_to_json;

/// Hot-cache byte budget in megabytes (`HFS_HOT_CACHE_MB`). `0`
/// disables the hot layer entirely; unset means [`DEFAULT_HOT_CACHE_MB`].
pub const ENV_HOT_CACHE_MB: &str = "HFS_HOT_CACHE_MB";

/// Default hot-cache budget when `HFS_HOT_CACHE_MB` is unset.
pub const DEFAULT_HOT_CACHE_MB: u64 = 64;

/// Shard count; matches the disk cache's 16-way first-hex-digit split.
const SHARDS: usize = 16;

/// Estimated fixed per-entry overhead (map/tree nodes, `Arc` headers,
/// the key stored in both indexes) charged on top of the payload bytes.
const ENTRY_OVERHEAD: u64 = 96;

/// One resident cache entry: the decoded outcome plus the exact
/// serialized text the disk cache holds for the same key.
#[derive(Debug)]
pub struct HotEntry {
    outcome: JobOutcome,
    json: Arc<str>,
}

impl HotEntry {
    /// An entry from a decoded outcome and its serialized text. The
    /// caller promises `json` is exactly the serialization of
    /// `outcome` (the invariant every consumer of [`json`] relies on).
    ///
    /// [`json`]: HotEntry::json
    pub(crate) fn new(outcome: JobOutcome, json: Arc<str>) -> HotEntry {
        HotEntry { outcome, json }
    }

    /// The decoded outcome.
    pub fn outcome(&self) -> &JobOutcome {
        &self.outcome
    }

    /// The serialized (pretty) outcome text, byte-identical to the
    /// disk-cache entry for the same key.
    pub fn json(&self) -> &str {
        &self.json
    }

    /// The serialized text as a shared handle, cheap to splice into
    /// outgoing frames ([`Json::Raw`](crate::Json::Raw)).
    pub fn json_arc(&self) -> &Arc<str> {
        &self.json
    }
}

/// A point-in-time snapshot of hot-cache activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HotCacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that fell through (to disk or to execution).
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Entries accepted (inserts and replacements).
    pub insertions: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Estimated resident bytes (payload + per-entry overhead).
    pub bytes: u64,
}

struct Slot {
    entry: Arc<HotEntry>,
    tick: u64,
    cost: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<String, Slot>,
    lru: BTreeMap<u64, String>,
    bytes: u64,
}

struct HotObs {
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    bytes: Gauge,
    entries: Gauge,
}

/// The sharded, byte-bounded, LRU-evicting in-memory result cache.
pub struct HotCache {
    shards: Vec<Mutex<Shard>>,
    shard_cap: u64,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    insertions: AtomicU64,
    total_bytes: AtomicU64,
    total_entries: AtomicU64,
    obs: OnceLock<HotObs>,
}

impl std::fmt::Debug for HotCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotCache")
            .field("cap_bytes", &(self.shard_cap * SHARDS as u64))
            .field("stats", &self.stats())
            .finish()
    }
}

impl HotCache {
    /// A hot cache bounded by `cap_bytes` (split evenly across 16
    /// shards; each shard keeps at least one entry's worth of room).
    pub fn new(cap_bytes: u64) -> HotCache {
        HotCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_cap: (cap_bytes / SHARDS as u64).max(ENTRY_OVERHEAD),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            total_bytes: AtomicU64::new(0),
            total_entries: AtomicU64::new(0),
            obs: OnceLock::new(),
        }
    }

    /// Builds the hot cache the environment asks for: `None` when
    /// `HFS_HOT_CACHE_MB=0`, otherwise a cache bounded by the requested
    /// (or default) budget.
    pub fn from_env() -> Option<Arc<HotCache>> {
        let mb = std::env::var(ENV_HOT_CACHE_MB)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(DEFAULT_HOT_CACHE_MB);
        (mb > 0).then(|| Arc::new(HotCache::new(mb * 1024 * 1024)))
    }

    /// The total byte budget.
    pub fn cap_bytes(&self) -> u64 {
        self.shard_cap * SHARDS as u64
    }

    /// Registers hit/eviction counters and residency gauges on
    /// `registry` (`hfs_hot_cache_*`). Idempotent; the first call wins.
    /// Until called, the cache only keeps its internal [`stats`]
    /// counters — observability stays strictly opt-in.
    ///
    /// [`stats`]: HotCache::stats
    pub fn install_metrics(&self, registry: &Registry) {
        let _ = self.obs.set(HotObs {
            hits: registry.counter("hfs_hot_cache_hits_total"),
            misses: registry.counter("hfs_hot_cache_misses_total"),
            evictions: registry.counter("hfs_hot_cache_evictions_total"),
            bytes: registry.gauge("hfs_hot_cache_bytes"),
            entries: registry.gauge("hfs_hot_cache_entries"),
        });
        self.sync_gauges();
    }

    fn sync_gauges(&self) {
        if let Some(o) = self.obs.get() {
            o.bytes
                .set(i64::try_from(self.total_bytes.load(Ordering::Relaxed)).unwrap_or(i64::MAX));
            o.entries
                .set(i64::try_from(self.total_entries.load(Ordering::Relaxed)).unwrap_or(i64::MAX));
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let idx = key
            .bytes()
            .next()
            .and_then(|b| (b as char).to_digit(16))
            .unwrap_or(0) as usize;
        &self.shards[idx % SHARDS]
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<HotEntry>> {
        let mut shard = self.shard(key).lock().unwrap();
        let Some(slot) = shard.map.get(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = self.obs.get() {
                o.misses.inc();
            }
            return None;
        };
        let entry = Arc::clone(&slot.entry);
        let old_tick = slot.tick;
        let new_tick = self.tick.fetch_add(1, Ordering::Relaxed);
        shard.lru.remove(&old_tick);
        shard.lru.insert(new_tick, key.to_string());
        shard.map.get_mut(key).unwrap().tick = new_tick;
        drop(shard);
        self.hits.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs.get() {
            o.hits.inc();
        }
        Some(entry)
    }

    /// Inserts (or refreshes) `key`, evicting least-recently-used
    /// entries in its shard until the shard fits its byte budget.
    /// Non-`Ok` outcomes and entries larger than a whole shard are
    /// declined. `json` is the already-serialized outcome text when the
    /// caller has one (a disk load or a store that just serialized);
    /// otherwise it is produced here.
    pub fn insert(&self, key: &str, outcome: &JobOutcome, json: Option<&str>) {
        if !outcome.is_ok() {
            return;
        }
        let json: Arc<str> = match json {
            Some(t) => Arc::from(t),
            None => Arc::from(outcome_to_json(outcome).to_pretty().as_str()),
        };
        let cost = ENTRY_OVERHEAD + 2 * key.len() as u64 + json.len() as u64;
        if cost > self.shard_cap {
            return;
        }
        let entry = Arc::new(HotEntry {
            outcome: outcome.clone(),
            json,
        });
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut evicted = 0u64;
        let mut shard = self.shard(key).lock().unwrap();
        if let Some(old) = shard.map.remove(key) {
            shard.lru.remove(&old.tick);
            shard.bytes -= old.cost;
            self.total_bytes.fetch_sub(old.cost, Ordering::Relaxed);
            self.total_entries.fetch_sub(1, Ordering::Relaxed);
        }
        shard
            .map
            .insert(key.to_string(), Slot { entry, tick, cost });
        shard.lru.insert(tick, key.to_string());
        shard.bytes += cost;
        self.total_bytes.fetch_add(cost, Ordering::Relaxed);
        self.total_entries.fetch_add(1, Ordering::Relaxed);
        while shard.bytes > self.shard_cap {
            // The loop terminates before touching the entry just
            // inserted: its cost alone fits the shard budget, and it
            // holds the highest tick.
            let (&victim_tick, _) = shard.lru.iter().next().unwrap();
            let victim_key = shard.lru.remove(&victim_tick).unwrap();
            let victim = shard.map.remove(&victim_key).unwrap();
            shard.bytes -= victim.cost;
            self.total_bytes.fetch_sub(victim.cost, Ordering::Relaxed);
            self.total_entries.fetch_sub(1, Ordering::Relaxed);
            evicted += 1;
        }
        drop(shard);
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            if let Some(o) = self.obs.get() {
                o.evictions.add(evicted);
            }
        }
        self.sync_gauges();
    }

    /// A consistent-enough snapshot of the counters (each field is
    /// individually exact; the set is not taken under one lock).
    pub fn stats(&self) -> HotCacheStats {
        HotCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            entries: self.total_entries.load(Ordering::Relaxed),
            bytes: self.total_bytes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{execute, Job};
    use hfs_core::kernel::KernelPair;
    use hfs_core::{DesignPoint, MachineConfig};

    fn demo_outcome(iters: u64) -> (String, JobOutcome) {
        let job = Job::pipeline(
            "hot/demo",
            KernelPair::simple("demo", 2, iters),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        );
        (job.key(), execute(&job, 0))
    }

    #[test]
    fn insert_then_get_round_trips_outcome_and_bytes() {
        let hot = HotCache::new(1 << 20);
        let (key, out) = demo_outcome(30);
        assert!(hot.get(&key).is_none(), "cold cache misses");
        hot.insert(&key, &out, None);
        let entry = hot.get(&key).expect("hit after insert");
        assert_eq!(
            entry.outcome().ok().unwrap().cycles,
            out.ok().unwrap().cycles
        );
        assert_eq!(
            entry.json(),
            outcome_to_json(&out).to_pretty(),
            "stored text matches the disk-cache serialization"
        );
        let s = hot.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes > entry.json().len() as u64);
    }

    #[test]
    fn failures_are_declined() {
        let hot = HotCache::new(1 << 20);
        hot.insert("deadbeef", &JobOutcome::Timeout { max_cycles: 1 }, None);
        hot.insert("deadbeef", &JobOutcome::Cancelled, None);
        hot.insert("deadbeef", &JobOutcome::WorkerDied("x".into()), None);
        assert!(hot.get("deadbeef").is_none());
        assert_eq!(hot.stats().entries, 0);
    }

    #[test]
    fn lru_bound_holds_under_churn_and_evicts_oldest_first() {
        // A deliberately tiny budget: each shard fits only a few
        // entries, so churning many keys through one shard must evict.
        let (_, out) = demo_outcome(30);
        let entry_cost = ENTRY_OVERHEAD + 2 * 16 + outcome_to_json(&out).to_pretty().len() as u64;
        let hot = HotCache::new(entry_cost * 3 * SHARDS as u64);
        // All keys share a first hex digit => one shard.
        let keys: Vec<String> = (0..50).map(|i| format!("a{i:015x}")).collect();
        for k in &keys {
            hot.insert(k, &out, None);
        }
        let s = hot.stats();
        assert!(s.bytes <= hot.cap_bytes(), "byte bound respected: {s:?}");
        assert!(s.evictions > 0, "churn must evict: {s:?}");
        assert_eq!(s.entries + s.evictions, 50, "every insert accounted");
        // The survivors are exactly the most recently inserted keys.
        let resident: Vec<bool> = keys.iter().map(|k| hot.get(k).is_some()).collect();
        let first_resident = resident.iter().position(|&r| r).unwrap();
        assert!(
            resident[first_resident..].iter().all(|&r| r),
            "residency must be a suffix of insertion order"
        );
        // Touching the oldest survivor protects it from the next evict.
        let oldest = &keys[first_resident];
        assert!(hot.get(oldest).is_some());
        let (_, fresh) = demo_outcome(31);
        hot.insert("a0000000000000ff", &fresh, None);
        assert!(
            hot.get(oldest).is_some(),
            "recently touched entry survives the next eviction"
        );
    }

    #[test]
    fn oversized_entries_are_declined_not_evicting_everything() {
        let hot = HotCache::new(SHARDS as u64 * 128);
        let (key, out) = demo_outcome(30);
        hot.insert(&key, &out, None); // far larger than 128 bytes/shard
        assert!(hot.get(&key).is_none());
        assert_eq!(hot.stats().entries, 0);
    }

    #[test]
    fn concurrent_insert_get_evict_is_exact() {
        use std::thread;
        let hot = Arc::new(HotCache::new(200 * 1024));
        let (_, out) = demo_outcome(30);
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let hot = Arc::clone(&hot);
                let out = out.clone();
                thread::spawn(move || {
                    for i in 0..200 {
                        let key = format!("{:016x}", (t * 1000 + i) * 0x9e37);
                        hot.insert(&key, &out, None);
                        if let Some(e) = hot.get(&key) {
                            assert_eq!(e.outcome().ok().unwrap().cycles, out.ok().unwrap().cycles);
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = hot.stats();
        assert!(s.bytes <= hot.cap_bytes(), "bound holds under races: {s:?}");
        assert_eq!(s.insertions, 800);
        assert_eq!(
            s.entries + s.evictions,
            800,
            "inserts partition into resident + evicted: {s:?}"
        );
    }

    #[test]
    fn metrics_installation_mirrors_internal_counters() {
        let hot = HotCache::new(1 << 20);
        let reg = Registry::new();
        hot.install_metrics(&reg);
        let (key, out) = demo_outcome(30);
        hot.get(&key);
        hot.insert(&key, &out, None);
        hot.get(&key);
        let text = reg.render_prometheus();
        assert!(text.contains("hfs_hot_cache_hits_total 1"), "{text}");
        assert!(text.contains("hfs_hot_cache_misses_total 1"), "{text}");
        assert!(text.contains("hfs_hot_cache_entries 1"), "{text}");
    }
}

//! Minimal JSON reading/writing for the result cache and artifacts.
//!
//! The workspace is std-only, so this module hand-rolls the small JSON
//! subset the harness needs: objects with ordered keys, arrays, strings,
//! booleans, null, unsigned integers, and floats. Writing is fully
//! deterministic (insertion order, fixed number formatting) so artifacts
//! can be compared byte-for-byte across runs and worker counts.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all harness counters are `u64`).
    U64(u64),
    /// A float; written via Rust's shortest-roundtrip formatting.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
    /// Pre-serialized JSON spliced into the output verbatim. Never
    /// produced by the parser; constructors promise the text is exactly
    /// one valid JSON value. Exists so hot paths (the server's cached
    /// result delivery) can re-emit a stored serialization without
    /// rebuilding and re-encoding the tree.
    Raw(std::sync::Arc<str>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64`: floats directly, integers widened.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Serializes with two-space indentation, for human-readable artifacts.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
            // Stored pretty text keeps its interior newlines (JSON
            // whitespace is insignificant); only the trailing newline
            // is dropped.
            Json::Raw(s) => out.push_str(s.trim_end()),
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl std::fmt::Display for Json {
    /// Compact (whitespace-free) serialization.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
        // Ensure it parses back as a float, not an integer.
        if !out.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset where the error was detected.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn bytes(&self) -> &[u8] {
        self.input.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.input[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .input
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // `pos` always sits on a char boundary: the parser only
                    // advances past ASCII or whole chars.
                    let c = self.input[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = &self.input[start..self.pos];
        if !is_float && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Json::obj(vec![
            ("name", Json::Str("fig6/bzip2".into())),
            ("cycles", Json::U64(123_456_789)),
            ("ratio", Json::F64(1.25)),
            ("ok", Json::Bool(true)),
            ("sc", Json::Null),
            (
                "cores",
                Json::Arr(vec![Json::U64(1), Json::U64(2), Json::U64(3)]),
            ),
        ]);
        let s = v.to_string();
        let back = parse(&s).unwrap();
        assert_eq!(back, v);
        assert_eq!(back.to_string(), s, "serialization is stable");
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Json::obj(vec![
            ("a", Json::Arr(vec![Json::U64(1), Json::Obj(vec![])])),
            ("b", Json::Obj(vec![("c".into(), Json::Arr(vec![]))])),
        ]);
        assert_eq!(parse(&v.to_pretty()).unwrap(), v);
    }

    #[test]
    fn escapes_round_trip() {
        let v = Json::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Json::Str("Aé".into()));
    }

    #[test]
    fn integers_stay_exact() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v, Json::U64(u64::MAX));
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(parse("-3.5").unwrap(), Json::F64(-3.5));
        assert_eq!(parse("1e3").unwrap(), Json::F64(1000.0));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"k": [1, "two", null]}"#).unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_str(), Some("two"));
        assert!(arr[2].is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn raw_splices_parse_back_to_the_original_tree() {
        let inner = Json::obj(vec![
            ("status", Json::Str("ok".into())),
            ("cycles", Json::U64(42)),
        ]);
        // Stored pretty text (trailing newline and all), spliced both
        // compactly and prettily inside a larger document.
        let raw = Json::Raw(inner.to_pretty().into());
        let doc = Json::obj(vec![("index", Json::U64(7)), ("outcome", raw)]);
        for text in [doc.to_string(), doc.to_pretty()] {
            let back = parse(&text).unwrap();
            assert_eq!(back.get("index").unwrap().as_u64(), Some(7));
            assert_eq!(back.get("outcome").unwrap(), &inner);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"\\x\""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}

//! On-disk result cache, sharded 16 ways by key prefix:
//! `<dir>/<k[0]>/<key>.json`, one file per job outcome.
//!
//! Sharding keeps per-directory entry counts manageable when a
//! long-running `hfs-serve` instance accumulates a large design-space
//! cache, and spreads rename traffic across directories. Caches written
//! by older harnesses stored entries flat (`<dir>/<key>.json`); a
//! migration shim in [`Cache::load`] still finds those and moves each
//! one into its shard on first touch.
//!
//! Only successful outcomes are persisted — failures are worth retrying
//! on the next run, and a partial `all_figures` pass therefore resumes
//! exactly where it failed. Writes go through a temp file + rename so a
//! killed run never leaves a truncated entry behind.
//!
//! An optional in-memory [`HotCache`] fronts the disk: loads check it
//! first, and both loads and stores populate it write-through, so a
//! warm lookup skips the file read and JSON parse entirely. Because
//! entries are content-keyed and immutable, the two layers can never
//! disagree.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::hotcache::{HotCache, HotEntry};
use crate::job::JobOutcome;
use crate::json::parse;
use crate::ser::{outcome_from_json, outcome_to_json};

/// A directory of cached job outcomes keyed by content hash, optionally
/// fronted by a bounded in-memory hot layer.
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    tmp_counter: AtomicU64,
    hot: Option<Arc<HotCache>>,
}

impl Cache {
    /// Opens (without creating) a cache rooted at `dir`, with the hot
    /// layer the environment asks for (`HFS_HOT_CACHE_MB`; `0`
    /// disables it).
    pub fn new(dir: impl Into<PathBuf>) -> Cache {
        Cache::with_hot(dir, HotCache::from_env())
    }

    /// Opens a cache with an explicit hot layer (or none) — the hook
    /// for servers and benchmarks that size or share the hot cache
    /// themselves.
    pub fn with_hot(dir: impl Into<PathBuf>, hot: Option<Arc<HotCache>>) -> Cache {
        Cache {
            dir: dir.into(),
            tmp_counter: AtomicU64::new(0),
            hot,
        }
    }

    /// The hot layer, when one is attached.
    pub fn hot(&self) -> Option<&Arc<HotCache>> {
        self.hot.as_ref()
    }

    /// Memory-only lookup: a hit costs one shard lock, never disk I/O.
    /// The server's submit path uses this to resolve warm jobs inline
    /// without blocking the dispatcher on the filesystem.
    pub fn hot_entry(&self, key: &str) -> Option<Arc<HotEntry>> {
        self.hot.as_ref()?.get(key)
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shard subdirectory for `key`: its first hex digit, giving 16
    /// shards for the 16-hex-digit FNV keys.
    fn shard_dir(&self, key: &str) -> PathBuf {
        let shard = key
            .chars()
            .next()
            .filter(char::is_ascii_hexdigit)
            .unwrap_or('0');
        self.dir.join(shard.to_string())
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.shard_dir(key).join(format!("{key}.json"))
    }

    /// The pre-sharding flat location of `key` (`<dir>/<key>.json`).
    fn legacy_path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Loads the outcome cached under `key`, if present and decodable.
    /// Corrupt or unreadable entries are treated as misses. Entries found
    /// at the pre-sharding flat path still hit, and are moved into their
    /// shard (best-effort) so the next lookup is direct.
    pub fn load(&self, key: &str) -> Option<JobOutcome> {
        Some(self.load_entry(key)?.outcome().clone())
    }

    /// Like [`load`](Cache::load), but returns the outcome *with* its
    /// cached serialization, so callers that re-emit the serialized
    /// text (the server's key-reference delivery path) skip a
    /// re-encode per hit. A disk hit still populates the hot layer;
    /// without one, the entry is built ad hoc from the disk text.
    pub fn load_entry(&self, key: &str) -> Option<Arc<HotEntry>> {
        if let Some(entry) = self.hot_entry(key) {
            return Some(entry);
        }
        let path = self.path_for(key);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                let legacy = self.legacy_path_for(key);
                let t = fs::read_to_string(&legacy).ok()?;
                if fs::create_dir_all(self.shard_dir(key)).is_ok() {
                    let _ = fs::rename(&legacy, &path);
                }
                t
            }
        };
        let outcome = outcome_from_json(&parse(&text).ok()?).ok()?;
        if let Some(hot) = &self.hot {
            hot.insert(key, &outcome, Some(&text));
        }
        Some(Arc::new(HotEntry::new(outcome, text.into())))
    }

    /// Persists a successful outcome under `key`; non-`Ok` outcomes are
    /// ignored. I/O failures are swallowed: the cache is an accelerator,
    /// never a correctness dependency.
    pub fn store(&self, key: &str, outcome: &JobOutcome) {
        if !outcome.is_ok() {
            return;
        }
        // One serialization feeds both layers.
        let body = outcome_to_json(outcome).to_pretty();
        if let Some(hot) = &self.hot {
            hot.insert(key, outcome, Some(&body));
        }
        let shard = self.shard_dir(key);
        if fs::create_dir_all(&shard).is_err() {
            return;
        }
        let tmp = shard.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, body).is_ok() && fs::rename(&tmp, self.path_for(key)).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{execute, Job};
    use hfs_core::kernel::KernelPair;
    use hfs_core::{DesignPoint, MachineConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hfs-cache-test-{}-{}", std::process::id(), tag));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn demo_outcome() -> (String, JobOutcome) {
        let job = Job::pipeline(
            "t",
            KernelPair::simple("demo", 2, 30),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        );
        (job.key(), execute(&job, 0))
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let cache = Cache::new(&dir);
        let (key, out) = demo_outcome();
        assert!(cache.load(&key).is_none(), "cold cache misses");
        cache.store(&key, &out);
        let loaded = cache.load(&key).expect("hit after store");
        assert_eq!(
            loaded.ok().unwrap().cycles,
            out.ok().unwrap().cycles,
            "cached cycles match"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn entries_land_in_their_shard() {
        let dir = tmp_dir("shards");
        let cache = Cache::new(&dir);
        let (key, out) = demo_outcome();
        cache.store(&key, &out);
        let shard = key.chars().next().unwrap().to_string();
        assert!(
            dir.join(&shard).join(format!("{key}.json")).is_file(),
            "entry must live under shard {shard}/"
        );
        assert!(
            !dir.join(format!("{key}.json")).exists(),
            "no flat entry is written"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_flat_entries_hit_and_migrate() {
        let dir = tmp_dir("migrate");
        let cache = Cache::new(&dir);
        let (key, out) = demo_outcome();
        // Simulate a pre-sharding cache: write the entry flat by hand.
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(format!("{key}.json")),
            outcome_to_json(&out).to_pretty(),
        )
        .unwrap();
        let loaded = cache.load(&key).expect("legacy entry hits");
        assert_eq!(loaded.ok().unwrap().cycles, out.ok().unwrap().cycles);
        // The shim moved it into its shard; the flat file is gone.
        let shard = key.chars().next().unwrap().to_string();
        assert!(dir.join(&shard).join(format!("{key}.json")).is_file());
        assert!(!dir.join(format!("{key}.json")).exists());
        // And the migrated location keeps hitting.
        assert!(cache.load(&key).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failures_are_not_cached() {
        let dir = tmp_dir("failures");
        let cache = Cache::new(&dir);
        cache.store("deadbeef", &JobOutcome::Timeout { max_cycles: 1 });
        cache.store("deadbeef", &JobOutcome::SimError("x".into()));
        cache.store("deadbeef", &JobOutcome::Cancelled);
        assert!(cache.load("deadbeef").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn hot_layer_serves_after_disk_entry_disappears() {
        use crate::hotcache::HotCache;
        use std::sync::Arc;
        let dir = tmp_dir("hotlayer");
        let hot = Arc::new(HotCache::new(1 << 20));
        let cache = Cache::with_hot(&dir, Some(Arc::clone(&hot)));
        let (key, out) = demo_outcome();
        cache.store(&key, &out);
        // The hot entry's text is byte-identical to the disk file.
        let disk = fs::read_to_string(
            dir.join(key.chars().next().unwrap().to_string())
                .join(format!("{key}.json")),
        )
        .unwrap();
        assert_eq!(cache.hot_entry(&key).unwrap().json(), disk);
        // Removing the disk file doesn't evict the hot copy.
        let _ = fs::remove_dir_all(&dir);
        let loaded = cache.load(&key).expect("hot layer still hits");
        assert_eq!(loaded.ok().unwrap().cycles, out.ok().unwrap().cycles);
        // A disk-only cache (no hot layer) now misses.
        assert!(Cache::with_hot(&dir, None).load(&key).is_none());
    }

    #[test]
    fn disk_load_populates_the_hot_layer() {
        use crate::hotcache::HotCache;
        use std::sync::Arc;
        let dir = tmp_dir("hotfill");
        let (key, out) = demo_outcome();
        Cache::with_hot(&dir, None).store(&key, &out);
        let hot = Arc::new(HotCache::new(1 << 20));
        let cache = Cache::with_hot(&dir, Some(Arc::clone(&hot)));
        assert!(cache.hot_entry(&key).is_none(), "hot starts cold");
        cache.load(&key).expect("disk hit");
        assert!(cache.hot_entry(&key).is_some(), "disk hit fills hot");
        let s = hot.stats();
        // Two misses (the cold probe + the load's own probe), then the
        // post-load probe hits.
        assert_eq!((s.hits, s.misses, s.entries), (1, 2, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = tmp_dir("corrupt");
        fs::create_dir_all(dir.join("a")).unwrap();
        fs::write(dir.join("a").join("abc.json"), "{not json").unwrap();
        assert!(Cache::new(&dir).load("abc").is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}

//! On-disk result cache: `<dir>/<key>.json`, one file per job outcome.
//!
//! Only successful outcomes are persisted — failures are worth retrying
//! on the next run, and a partial `all_figures` pass therefore resumes
//! exactly where it failed. Writes go through a temp file + rename so a
//! killed run never leaves a truncated entry behind.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::job::JobOutcome;
use crate::json::parse;
use crate::ser::{outcome_from_json, outcome_to_json};

/// A directory of cached job outcomes keyed by content hash.
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    tmp_counter: AtomicU64,
}

impl Cache {
    /// Opens (without creating) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Cache {
        Cache {
            dir: dir.into(),
            tmp_counter: AtomicU64::new(0),
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Loads the outcome cached under `key`, if present and decodable.
    /// Corrupt or unreadable entries are treated as misses.
    pub fn load(&self, key: &str) -> Option<JobOutcome> {
        let text = fs::read_to_string(self.path_for(key)).ok()?;
        outcome_from_json(&parse(&text).ok()?).ok()
    }

    /// Persists a successful outcome under `key`; non-`Ok` outcomes are
    /// ignored. I/O failures are swallowed: the cache is an accelerator,
    /// never a correctness dependency.
    pub fn store(&self, key: &str, outcome: &JobOutcome) {
        if !outcome.is_ok() {
            return;
        }
        if fs::create_dir_all(&self.dir).is_err() {
            return;
        }
        let body = outcome_to_json(outcome).to_pretty();
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        if fs::write(&tmp, body).is_ok() && fs::rename(&tmp, self.path_for(key)).is_err() {
            let _ = fs::remove_file(&tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{execute, Job};
    use hfs_core::kernel::KernelPair;
    use hfs_core::{DesignPoint, MachineConfig};

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("hfs-cache-test-{}-{}", std::process::id(), tag));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = tmp_dir("roundtrip");
        let cache = Cache::new(&dir);
        let job = Job::pipeline(
            "t",
            KernelPair::simple("demo", 2, 30),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        );
        let out = execute(&job, 0);
        let key = job.key();
        assert!(cache.load(&key).is_none(), "cold cache misses");
        cache.store(&key, &out);
        let loaded = cache.load(&key).expect("hit after store");
        assert_eq!(
            loaded.ok().unwrap().cycles,
            out.ok().unwrap().cycles,
            "cached cycles match"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failures_are_not_cached() {
        let dir = tmp_dir("failures");
        let cache = Cache::new(&dir);
        cache.store("deadbeef", &JobOutcome::Timeout { max_cycles: 1 });
        cache.store("deadbeef", &JobOutcome::SimError("x".into()));
        assert!(cache.load("deadbeef").is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = tmp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("abc.json"), "{not json").unwrap();
        assert!(Cache::new(&dir).load("abc").is_none());
        let _ = fs::remove_dir_all(&dir);
    }
}

//! Hand-rolled (de)serialization of run results and job outcomes.
//!
//! Everything a [`RunResult`] carries — per-core stats, the Figure 7
//! stall breakdown, memory-system counters — round-trips through the
//! [`Json`] model so cached results reconstruct bit-identically.

use hfs_core::RunResult;
use hfs_cpu::CoreStats;
use hfs_mem::{BusStats, MemStats};
use hfs_sim::stats::{Breakdown, StallComponent};
use hfs_trace::{HistogramSummary, MetricsReport};

use crate::job::JobOutcome;
use crate::json::Json;

/// A cache/artifact decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "result decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

fn field(v: &Json, key: &str) -> Result<u64, DecodeError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| DecodeError(format!("missing u64 field `{key}`")))
}

fn breakdown_to_json(b: &Breakdown) -> Json {
    let mut pairs = vec![("busy", Json::U64(b.busy()))];
    for (c, cycles) in b.iter() {
        pairs.push((c.label(), Json::U64(cycles)));
    }
    Json::obj(pairs)
}

fn breakdown_from_json(v: &Json) -> Result<Breakdown, DecodeError> {
    let mut b = Breakdown::new();
    b.charge_busy(field(v, "busy")?);
    for c in StallComponent::ALL {
        b.charge(c, field(v, c.label())?);
    }
    Ok(b)
}

fn core_to_json(c: &CoreStats) -> Json {
    Json::obj(vec![
        ("cycles", Json::U64(c.cycles)),
        ("app_instrs", Json::U64(c.app_instrs)),
        ("comm_instrs", Json::U64(c.comm_instrs)),
        ("ozq_stalls", Json::U64(c.ozq_stalls)),
        ("stream_blocked", Json::U64(c.stream_blocked)),
        ("breakdown", breakdown_to_json(&c.breakdown)),
    ])
}

fn core_from_json(v: &Json) -> Result<CoreStats, DecodeError> {
    Ok(CoreStats {
        cycles: field(v, "cycles")?,
        app_instrs: field(v, "app_instrs")?,
        comm_instrs: field(v, "comm_instrs")?,
        ozq_stalls: field(v, "ozq_stalls")?,
        stream_blocked: field(v, "stream_blocked")?,
        breakdown: breakdown_from_json(
            v.get("breakdown")
                .ok_or_else(|| DecodeError("missing `breakdown`".into()))?,
        )?,
    })
}

fn mem_to_json(m: &MemStats) -> Json {
    Json::obj(vec![
        ("l1_hits", Json::U64(m.l1_hits)),
        ("l1_misses", Json::U64(m.l1_misses)),
        ("l2_accesses", Json::U64(m.l2_accesses)),
        ("l2_port_conflicts", Json::U64(m.l2_port_conflicts)),
        ("dram_accesses", Json::U64(m.dram_accesses)),
        ("forwards", Json::U64(m.forwards)),
        ("updates", Json::U64(m.updates)),
        (
            "bus",
            Json::obj(vec![
                ("addr_phases", Json::U64(m.bus.addr_phases)),
                ("data_transfers", Json::U64(m.bus.data_transfers)),
                ("data_busy_cycles", Json::U64(m.bus.data_busy_cycles)),
                ("ctl_delivered", Json::U64(m.bus.ctl_delivered)),
            ]),
        ),
    ])
}

fn mem_from_json(v: &Json) -> Result<MemStats, DecodeError> {
    let bus = v
        .get("bus")
        .ok_or_else(|| DecodeError("missing `bus`".into()))?;
    Ok(MemStats {
        l1_hits: field(v, "l1_hits")?,
        l1_misses: field(v, "l1_misses")?,
        l2_accesses: field(v, "l2_accesses")?,
        l2_port_conflicts: field(v, "l2_port_conflicts")?,
        dram_accesses: field(v, "dram_accesses")?,
        forwards: field(v, "forwards")?,
        // Absent in blobs cached before the protocol axis existed.
        updates: v.get("updates").and_then(Json::as_u64).unwrap_or(0),
        bus: BusStats {
            addr_phases: field(bus, "addr_phases")?,
            data_transfers: field(bus, "data_transfers")?,
            data_busy_cycles: field(bus, "data_busy_cycles")?,
            ctl_delivered: field(bus, "ctl_delivered")?,
        },
    })
}

fn summary_to_json(s: &HistogramSummary) -> Json {
    Json::obj(vec![
        ("count", Json::U64(s.count)),
        ("sum", Json::U64(s.sum)),
        ("p50", Json::U64(s.p50)),
        ("p95", Json::U64(s.p95)),
        ("p99", Json::U64(s.p99)),
    ])
}

fn summary_from_json(v: &Json) -> Result<HistogramSummary, DecodeError> {
    Ok(HistogramSummary {
        count: field(v, "count")?,
        sum: field(v, "sum")?,
        p50: field(v, "p50")?,
        p95: field(v, "p95")?,
        p99: field(v, "p99")?,
    })
}

/// Serializes a [`MetricsReport`]. Counters and histograms keep their
/// insertion order (the report's serialization contract). `sched.*`
/// counters are excluded: they describe wall-clock machinery, not
/// simulated behavior, and artifact bytes must be identical across
/// `HFS_SCHED` modes.
pub fn metrics_to_json(m: &MetricsReport) -> Json {
    Json::obj(vec![
        ("breakdown", breakdown_to_json(&m.breakdown)),
        (
            "counters",
            Json::Obj(
                m.counters
                    .iter()
                    .filter(|(n, _)| !n.starts_with("sched."))
                    .map(|(n, v)| (n.clone(), Json::U64(*v)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Obj(
                m.histograms
                    .iter()
                    .map(|(n, s)| (n.clone(), summary_to_json(s)))
                    .collect(),
            ),
        ),
    ])
}

/// Reconstructs a [`MetricsReport`] from JSON.
///
/// # Errors
///
/// [`DecodeError`] on missing or mistyped fields.
pub fn metrics_from_json(v: &Json) -> Result<MetricsReport, DecodeError> {
    let mut m = MetricsReport::new();
    m.breakdown = breakdown_from_json(
        v.get("breakdown")
            .ok_or_else(|| DecodeError("missing metrics `breakdown`".into()))?,
    )?;
    match v.get("counters") {
        Some(Json::Obj(pairs)) => {
            for (n, val) in pairs {
                let val = val
                    .as_u64()
                    .ok_or_else(|| DecodeError(format!("counter `{n}` is not a u64")))?;
                m.counter(n.clone(), val);
            }
        }
        _ => return Err(DecodeError("missing metrics `counters` object".into())),
    }
    match v.get("histograms") {
        Some(Json::Obj(pairs)) => {
            for (n, val) in pairs {
                m.histograms.push((n.clone(), summary_from_json(val)?));
            }
        }
        _ => return Err(DecodeError("missing metrics `histograms` object".into())),
    }
    Ok(m)
}

/// Serializes a [`RunResult`] to JSON. The optional `metrics` field is
/// appended last and only when present, so untraced results keep their
/// exact pre-metrics byte layout.
pub fn run_result_to_json(r: &RunResult) -> Json {
    let mut pairs = vec![
        ("design", Json::Str(r.design.clone())),
        ("cycles", Json::U64(r.cycles)),
        ("iterations", Json::U64(r.iterations)),
        (
            "cores",
            Json::Arr(r.cores.iter().map(core_to_json).collect()),
        ),
        ("mem", mem_to_json(&r.mem)),
        (
            "stream_cache",
            match r.stream_cache {
                Some((h, m, d)) => Json::Arr(vec![Json::U64(h), Json::U64(m), Json::U64(d)]),
                None => Json::Null,
            },
        ),
    ];
    if let Some(m) = &r.metrics {
        pairs.push(("metrics", metrics_to_json(m)));
    }
    Json::obj(pairs)
}

/// Reconstructs a [`RunResult`] from JSON.
///
/// # Errors
///
/// [`DecodeError`] on missing or mistyped fields.
pub fn run_result_from_json(v: &Json) -> Result<RunResult, DecodeError> {
    let cores = v
        .get("cores")
        .and_then(Json::as_arr)
        .ok_or_else(|| DecodeError("missing `cores` array".into()))?
        .iter()
        .map(core_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let sc = v
        .get("stream_cache")
        .ok_or_else(|| DecodeError("missing `stream_cache`".into()))?;
    let stream_cache = if sc.is_null() {
        None
    } else {
        let arr = sc
            .as_arr()
            .filter(|a| a.len() == 3)
            .ok_or_else(|| DecodeError("`stream_cache` must be a 3-array".into()))?;
        Some((
            arr[0]
                .as_u64()
                .ok_or_else(|| DecodeError("bad stream_cache hits".into()))?,
            arr[1]
                .as_u64()
                .ok_or_else(|| DecodeError("bad stream_cache misses".into()))?,
            arr[2]
                .as_u64()
                .ok_or_else(|| DecodeError("bad stream_cache drops".into()))?,
        ))
    };
    Ok(RunResult {
        design: v
            .get("design")
            .and_then(Json::as_str)
            .ok_or_else(|| DecodeError("missing `design`".into()))?
            .to_string(),
        cycles: field(v, "cycles")?,
        iterations: field(v, "iterations")?,
        cores,
        mem: mem_from_json(
            v.get("mem")
                .ok_or_else(|| DecodeError("missing `mem`".into()))?,
        )?,
        stream_cache,
        metrics: v
            .get("metrics")
            .map(metrics_from_json)
            .transpose()?
            .map(Box::new),
        // Not serialized: a cache hit reconstructs the numbers, not the
        // fact that some past run was checked. CI re-runs checked
        // configurations with the cache disabled.
        checked: false,
    })
}

/// Serializes a [`JobOutcome`] (the cache/artifact payload).
pub fn outcome_to_json(o: &JobOutcome) -> Json {
    match o {
        JobOutcome::Ok(r) => Json::obj(vec![
            ("status", Json::Str("ok".into())),
            ("result", run_result_to_json(r)),
        ]),
        JobOutcome::SimError(e) => Json::obj(vec![
            ("status", Json::Str("sim_error".into())),
            ("error", Json::Str(e.clone())),
        ]),
        JobOutcome::CheckFailed(e) => Json::obj(vec![
            ("status", Json::Str("check_failed".into())),
            ("error", Json::Str(e.clone())),
        ]),
        JobOutcome::Timeout { max_cycles } => Json::obj(vec![
            ("status", Json::Str("timeout".into())),
            ("max_cycles", Json::U64(*max_cycles)),
        ]),
        JobOutcome::Cancelled => Json::obj(vec![("status", Json::Str("cancelled".into()))]),
        JobOutcome::WorkerDied(e) => Json::obj(vec![
            ("status", Json::Str("worker_died".into())),
            ("error", Json::Str(e.clone())),
        ]),
    }
}

/// Reconstructs a [`JobOutcome`] from JSON.
///
/// # Errors
///
/// [`DecodeError`] on unknown status tags or malformed payloads.
pub fn outcome_from_json(v: &Json) -> Result<JobOutcome, DecodeError> {
    match v.get("status").and_then(Json::as_str) {
        Some("ok") => Ok(JobOutcome::Ok(run_result_from_json(
            v.get("result")
                .ok_or_else(|| DecodeError("missing `result`".into()))?,
        )?)),
        Some("sim_error") => Ok(JobOutcome::SimError(
            v.get("error")
                .and_then(Json::as_str)
                .ok_or_else(|| DecodeError("missing `error`".into()))?
                .to_string(),
        )),
        Some("check_failed") => Ok(JobOutcome::CheckFailed(
            v.get("error")
                .and_then(Json::as_str)
                .ok_or_else(|| DecodeError("missing `error`".into()))?
                .to_string(),
        )),
        Some("timeout") => Ok(JobOutcome::Timeout {
            max_cycles: field(v, "max_cycles")?,
        }),
        Some("cancelled") => Ok(JobOutcome::Cancelled),
        Some("worker_died") => Ok(JobOutcome::WorkerDied(
            v.get("error")
                .and_then(Json::as_str)
                .ok_or_else(|| DecodeError("missing `error`".into()))?
                .to_string(),
        )),
        other => Err(DecodeError(format!("unknown status {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_result() -> RunResult {
        let mut breakdown = Breakdown::new();
        breakdown.charge_busy(70);
        breakdown.charge(StallComponent::Bus, 20);
        breakdown.charge(StallComponent::Mem, 10);
        let core = CoreStats {
            cycles: 100,
            app_instrs: 60,
            comm_instrs: 12,
            breakdown,
            ozq_stalls: 3,
            stream_blocked: 1,
        };
        RunResult {
            design: "HEAVYWT".into(),
            cycles: 100,
            iterations: 10,
            cores: vec![core, core],
            mem: MemStats {
                l1_hits: 50,
                l1_misses: 5,
                l2_accesses: 7,
                l2_port_conflicts: 1,
                dram_accesses: 2,
                bus: BusStats {
                    addr_phases: 4,
                    data_transfers: 3,
                    data_busy_cycles: 9,
                    ctl_delivered: 6,
                },
                forwards: 0,
                updates: 0,
            },
            stream_cache: Some((11, 2, 1)),
            metrics: None,
            checked: false,
        }
    }

    fn sample_metrics() -> MetricsReport {
        let mut m = MetricsReport::new();
        m.breakdown.charge_busy(70);
        m.breakdown.charge(StallComponent::Bus, 30);
        m.counter("mem.l1_hits", 50);
        m.counter("trace.produce", 10);
        let mut h = hfs_sim::stats::Histogram::new(16);
        for v in [3u64, 3, 4, 9] {
            h.record(v);
        }
        m.histogram("consume_to_use_cycles", &h);
        m
    }

    #[test]
    fn sched_counters_are_excluded_from_artifact_bytes() {
        let mut with_sched = sample_metrics();
        with_sched.counter("sched.scheduled", 123);
        with_sched.counter("sched.cycles_skipped", 456);
        let plain = sample_metrics();
        assert_eq!(
            metrics_to_json(&with_sched).to_string(),
            metrics_to_json(&plain).to_string(),
            "sched.* counters must not change artifact bytes"
        );
    }

    #[test]
    fn metrics_round_trip_preserves_order_and_values() {
        let m = sample_metrics();
        let text = metrics_to_json(&m).to_string();
        let back = metrics_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back, m);
        assert_eq!(metrics_to_json(&back).to_string(), text);
        assert_eq!(back.get_counter("trace.produce"), Some(10));
        assert_eq!(back.get_histogram("consume_to_use_cycles").unwrap().p50, 3);
    }

    #[test]
    fn result_with_metrics_round_trips_and_appends_last() {
        let mut r = sample_result();
        r.metrics = Some(Box::new(sample_metrics()));
        let text = run_result_to_json(&r).to_string();
        assert!(text.ends_with("}}}"), "metrics must be the last field");
        let back = run_result_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back.metrics, r.metrics);
        // Untraced results carry no `metrics` key at all.
        let plain = run_result_to_json(&sample_result()).to_string();
        assert!(!plain.contains("\"metrics\""));
        let back = run_result_from_json(&parse(&plain).unwrap()).unwrap();
        assert_eq!(back.metrics, None);
    }

    #[test]
    fn run_result_round_trips() {
        let r = sample_result();
        let json = run_result_to_json(&r);
        let text = json.to_string();
        let back = run_result_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(run_result_to_json(&back).to_string(), text);
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.cores.len(), 2);
        assert_eq!(back.cores[0].breakdown, r.cores[0].breakdown);
        assert_eq!(back.mem, r.mem);
        assert_eq!(back.stream_cache, r.stream_cache);
    }

    #[test]
    fn null_stream_cache_round_trips() {
        let mut r = sample_result();
        r.stream_cache = None;
        let text = run_result_to_json(&r).to_string();
        let back = run_result_from_json(&parse(&text).unwrap()).unwrap();
        assert_eq!(back.stream_cache, None);
    }

    #[test]
    fn outcomes_round_trip() {
        for o in [
            JobOutcome::Ok(sample_result()),
            JobOutcome::SimError("deadlock at cycle 5: stuck".into()),
            JobOutcome::CheckFailed("machine-check: [cycle 9] bus.double_grant: x".into()),
            JobOutcome::Timeout { max_cycles: 42 },
            JobOutcome::Cancelled,
            JobOutcome::WorkerDied("worker 1 exited 3 times running this job".into()),
        ] {
            let text = outcome_to_json(&o).to_string();
            let back = outcome_from_json(&parse(&text).unwrap()).unwrap();
            assert_eq!(outcome_to_json(&back).to_string(), text);
            assert_eq!(back.status(), o.status());
        }
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        for bad in [
            "{}",
            r#"{"status":"nope"}"#,
            r#"{"status":"ok"}"#,
            r#"{"status":"timeout"}"#,
            r#"{"status":"check_failed"}"#,
            r#"{"status":"worker_died"}"#,
        ] {
            assert!(outcome_from_json(&parse(bad).unwrap()).is_err(), "{bad}");
        }
    }
}

//! `hfs-harness` — the parallel experiment-execution engine.
//!
//! Every `hfs-bench` experiment routes its simulation runs through this
//! crate instead of calling [`hfs_core::Machine`] directly. The harness
//! provides:
//!
//! - [`Job`]: a benchmark × design-point × machine-config work unit with
//!   a stable, content-derived cache [key](Job::key);
//! - [`Engine`]: a `std::thread` worker pool that executes job batches
//!   in parallel while gathering results in submission order, so output
//!   is byte-identical at any `HFS_JOBS` setting;
//! - [`Cache`]: an on-disk result cache (`results/cache/<key>.json`)
//!   with hand-rolled, std-only JSON serialization, fronted by a
//!   bounded in-memory [`HotCache`] (`HFS_HOT_CACHE_MB`) so warm
//!   lookups skip disk I/O and re-parsing;
//! - robustness: simulator failures become structured [`JobOutcome`]s
//!   (never panics mid-batch), with a per-job simulated-cycle watchdog
//!   and configurable retries;
//! - observability: per-job timing and a structured progress stream via
//!   the `hfs-obs` logger (info level; `HFS_LOG=warn` or
//!   `HFS_NO_PROGRESS=1` silence it), engine counters and lifecycle
//!   histograms via [`Engine::stats`]/[`Engine::summary`]/
//!   [`Engine::registry`], machine-readable `results/<experiment>.json`
//!   artifacts, and — with `HFS_METRICS=1` / `HFS_TRACE_DIR=<dir>` —
//!   per-run [`hfs_trace::MetricsReport`]s and Chrome trace-event
//!   exports (see [`Engine::from_env`]).

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod cache;
pub mod engine;
pub mod hotcache;
pub mod job;
pub mod json;
pub mod ser;
pub mod spec;

pub use cache::Cache;
pub use engine::{Batch, Engine, EngineStats, Record};
pub use hotcache::{HotCache, HotCacheStats, HotEntry};
pub use job::{
    execute, execute_cancellable, execute_checked, execute_counted, execute_once,
    execute_once_cancellable, execute_once_instrumented, execute_once_with, Job, JobOutcome, Mode,
    CACHE_SCHEMA, DEFAULT_MAX_CYCLES,
};
pub use json::{parse, Json, ParseError};
pub use ser::{
    metrics_from_json, metrics_to_json, outcome_from_json, outcome_to_json, run_result_from_json,
    run_result_to_json, DecodeError,
};
pub use spec::{
    job_from_json, job_to_json, machine_config_from_json, machine_config_to_json, sweep_from_json,
    sweep_to_json,
};

//! End-to-end harness tests: determinism across worker counts, cache
//! round-trips, and watchdog behavior inside a batch.

use std::path::PathBuf;

use hfs_core::kernel::KernelPair;
use hfs_core::{DesignPoint, MachineConfig};
use hfs_harness::{Engine, Job, JobOutcome};

fn tmp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("hfs-engine-test-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn sweep_jobs() -> Vec<Job> {
    let designs = [
        DesignPoint::heavywt(),
        DesignPoint::syncopti(),
        DesignPoint::existing(),
        DesignPoint::memopti(),
    ];
    let mut jobs = Vec::new();
    for d in designs {
        for work in [1u32, 4, 9] {
            jobs.push(Job::pipeline(
                format!("{}/w{work}", d.label()),
                KernelPair::simple("demo", work, 40),
                MachineConfig::itanium2_cmp(d),
            ));
        }
    }
    jobs
}

#[test]
fn artifacts_are_byte_identical_across_worker_counts() {
    let serial = Engine::new(1).run_batch("sweep", sweep_jobs());
    let parallel = Engine::new(4).run_batch("sweep", sweep_jobs());
    assert!(serial.all_ok() && parallel.all_ok());
    assert_eq!(
        serial.artifact_json(),
        parallel.artifact_json(),
        "one worker and four workers must produce identical artifacts"
    );
}

#[test]
fn second_run_is_all_cache_hits_and_byte_identical() {
    let dir = tmp_dir("cache-roundtrip");
    let cold = Engine::new(4).with_cache_dir(&dir);
    let first = cold.run_batch("sweep", sweep_jobs());
    assert!(first.all_ok());
    assert_eq!(cold.stats().cache_misses, first.records.len() as u64);
    assert_eq!(cold.stats().cache_hits, 0);

    let warm = Engine::new(4).with_cache_dir(&dir);
    let second = warm.run_batch("sweep", sweep_jobs());
    assert!(second.all_cached(), "warm run must be 100% cache hits");
    assert_eq!(warm.stats().cache_hits, second.records.len() as u64);
    assert_eq!(warm.stats().cache_misses, 0);
    assert_eq!(
        first.artifact_json(),
        second.artifact_json(),
        "cached results must reconstruct byte-identically"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_deduplicates_identical_jobs_across_batches() {
    let dir = tmp_dir("cache-dedup");
    let engine = Engine::new(2).with_cache_dir(&dir);
    let job = |label: &str| {
        Job::pipeline(
            label,
            KernelPair::simple("demo", 3, 40),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        )
    };
    // Same content under different labels (as fig7/fig8 share HEAVYWT
    // baselines) must hit the same cache entry.
    engine.run_batch("figA", vec![job("figA/demo")]);
    let b = engine.run_batch("figB", vec![job("figB/demo")]);
    assert!(b.all_cached(), "label must not defeat cache dedup");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watchdog_timeout_surfaces_in_batch_without_hanging() {
    let jobs = vec![
        Job::pipeline(
            "ok",
            KernelPair::simple("demo", 2, 40),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        ),
        Job::pipeline(
            "stuck",
            KernelPair::simple("demo", 2, 100_000),
            MachineConfig::itanium2_cmp(DesignPoint::heavywt()),
        )
        .with_max_cycles(200),
    ];
    let batch = Engine::new(2).run_batch("watchdog", jobs);
    assert!(batch.records[0].outcome.is_ok());
    match &batch.records[1].outcome {
        JobOutcome::Timeout { max_cycles } => assert_eq!(*max_cycles, 200),
        other => panic!("expected watchdog timeout, got {other}"),
    }
    // A failed batch still writes a well-formed artifact.
    let artifact = batch.artifact_json();
    let parsed = hfs_harness::parse(&artifact).expect("artifact parses");
    let jobs = parsed.get("jobs").and_then(|j| j.as_arr()).unwrap();
    assert_eq!(jobs.len(), 2);
}

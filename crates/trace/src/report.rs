//! The unified machine-readable metrics report.

use std::fmt;

use hfs_sim::stats::{Breakdown, Histogram};

/// Summary statistics of one [`Histogram`]: sample count, sum, and the
/// nearest-rank 50th/95th/99th percentiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Median (0 when empty).
    pub p50: u64,
    /// 95th percentile (0 when empty).
    pub p95: u64,
    /// 99th percentile (0 when empty).
    pub p99: u64,
}

impl HistogramSummary {
    /// Summarizes a histogram.
    pub fn of(h: &Histogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count(),
            sum: h.sum(),
            p50: h.percentile(50.0).unwrap_or(0),
            p95: h.percentile(95.0).unwrap_or(0),
            p99: h.percentile(99.0).unwrap_or(0),
        }
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The unified per-run metrics report: every named counter the machine
/// kept, summaries of its latency/occupancy histograms, and the summed
/// Figure 7 stall breakdown. The same shape is used for simulator runs
/// and for the harness's own execution metrics.
///
/// Counters and histograms are stored as ordered `(name, value)` vectors
/// — insertion order is the serialization order, so reports are
/// byte-deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsReport {
    /// Named event counters, e.g. `("mem.l1_hits", 812)`.
    pub counters: Vec<(String, u64)>,
    /// Named histogram summaries, e.g. `("consume_to_use_cycles", ...)`.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Summed stall breakdown across all cores.
    pub breakdown: Breakdown,
}

impl MetricsReport {
    /// An empty report.
    pub fn new() -> MetricsReport {
        MetricsReport::default()
    }

    /// Appends a counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Appends a histogram summary.
    pub fn histogram(&mut self, name: impl Into<String>, h: &Histogram) {
        self.histograms.push((name.into(), HistogramSummary::of(h)));
    }

    /// Looks up a counter by name.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by name.
    pub fn get_histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }
}

impl fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "breakdown: {}", self.breakdown)?;
        for (name, v) in &self.counters {
            writeln!(f, "{name}={v}")?;
        }
        for (name, h) in &self.histograms {
            writeln!(
                f,
                "{name}: n={} mean={:.1} p50={} p95={} p99={}",
                h.count,
                h.mean(),
                h.p50,
                h.p95,
                h.p99
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_histogram() {
        let mut h = Histogram::new(100);
        for v in 1..=100u64 {
            h.record(v % 50);
        }
        let s = HistogramSummary::of(&h);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50, h.percentile(50.0).unwrap());
        assert_eq!(s.p99, h.percentile(99.0).unwrap());
        assert!(s.mean() > 0.0);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let s = HistogramSummary::of(&Histogram::new(4));
        assert_eq!(s, HistogramSummary::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn report_lookup_and_order() {
        let mut r = MetricsReport::new();
        r.counter("b", 2);
        r.counter("a", 1);
        let mut h = Histogram::new(4);
        h.record(3);
        r.histogram("lat", &h);
        assert_eq!(r.get_counter("a"), Some(1));
        assert_eq!(r.get_counter("missing"), None);
        assert_eq!(r.get_histogram("lat").unwrap().p50, 3);
        // Insertion order is preserved, not sorted.
        assert_eq!(r.counters[0].0, "b");
        let text = r.to_string();
        assert!(text.contains("b=2"));
        assert!(text.contains("lat: n=1"));
    }
}

//! The typed event taxonomy emitted by the simulator's hardware models.

use hfs_isa::{CoreId, QueueId};
use hfs_sim::stats::StallComponent;

/// Cache hierarchy level of a [`TraceEvent::CacheAccess`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// Private write-through L1 data cache.
    L1,
    /// Private L2 behind the OzQ.
    L2,
    /// Shared L3 behind the bus.
    L3,
}

impl CacheLevel {
    /// Short label ("L1"/"L2"/"L3").
    pub fn label(self) -> &'static str {
        match self {
            CacheLevel::L1 => "L1",
            CacheLevel::L2 => "L2",
            CacheLevel::L3 => "L3",
        }
    }
}

/// What a core did with one cycle, as charged by its Figure 7 accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreActivity {
    /// At least one instruction committed.
    Busy,
    /// Nothing committed; the stall is charged to one machine region.
    Stall(StallComponent),
}

impl CoreActivity {
    /// Span label: `"Busy"` or `"Stall:<component>"`.
    pub fn label(self) -> String {
        match self {
            CoreActivity::Busy => "Busy".to_string(),
            CoreActivity::Stall(c) => format!("Stall:{}", c.label()),
        }
    }
}

/// One timed event from the simulated machine. `at` fields are simulated
/// cycles ([`hfs_sim::Cycle::as_u64`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Per-cycle core activity sample (coalesced into spans at export).
    CoreState {
        /// The core.
        core: CoreId,
        /// Cycle the sample covers.
        at: u64,
        /// Busy or the attributed stall component.
        state: CoreActivity,
    },
    /// An instruction committed.
    Issue {
        /// The committing core.
        core: CoreId,
        /// Commit cycle.
        at: u64,
        /// Whether it was a COMM-OP (queue communication) instruction.
        comm: bool,
    },
    /// A cache lookup resolved.
    CacheAccess {
        /// Requesting core.
        core: CoreId,
        /// Resolution cycle.
        at: u64,
        /// Which cache level.
        level: CacheLevel,
        /// Hit (`true`) or miss.
        hit: bool,
    },
    /// The bus address phase granted a core's transaction.
    BusGrant {
        /// The granted core.
        core: CoreId,
        /// Grant cycle.
        at: u64,
        /// Whether the transaction was classified as streaming traffic.
        streaming: bool,
    },
    /// The bus data channel went busy for a transfer.
    BusData {
        /// Transfer start cycle.
        at: u64,
        /// Core cycles the channel stays occupied.
        cycles: u64,
    },
    /// An OzQ entry lost L2 port arbitration and recirculated.
    OzqRecirc {
        /// The L2's core.
        core: CoreId,
        /// Recirculation cycle.
        at: u64,
    },
    /// A produce committed element `seq` into a queue.
    Produce {
        /// Producing core.
        core: CoreId,
        /// Target queue.
        queue: QueueId,
        /// Element sequence number within the queue.
        seq: u64,
        /// Produce cycle.
        at: u64,
    },
    /// A consume delivered element `seq` to the consuming core.
    Consume {
        /// Consuming core.
        core: CoreId,
        /// Source queue.
        queue: QueueId,
        /// Element sequence number within the queue.
        seq: u64,
        /// Delivery cycle.
        at: u64,
    },
    /// Queue occupancy sampled at a produce.
    QueueDepth {
        /// The queue.
        queue: QueueId,
        /// Sample cycle.
        at: u64,
        /// Elements outstanding (produced, not yet acknowledged).
        depth: u64,
    },
    /// A consume found the queue empty and began waiting.
    SyncWait {
        /// Waiting core.
        core: CoreId,
        /// The empty queue.
        queue: QueueId,
        /// Cycle the wait began.
        at: u64,
    },
    /// The consumer-side stream cache captured a forwarded element.
    ScFill {
        /// The queue.
        queue: QueueId,
        /// Fill cycle.
        at: u64,
    },
    /// A consume was satisfied from the stream cache.
    ScHit {
        /// The queue.
        queue: QueueId,
        /// Hit cycle.
        at: u64,
    },
    /// The bus write-forward optimization delivered a line directly.
    Forward {
        /// Delivery cycle.
        at: u64,
        /// The forwarded line number.
        line: u64,
    },
}

impl TraceEvent {
    /// Stable names for each event kind, in [`TraceEvent::kind_index`]
    /// order. Used for the `trace.*` counters in metrics reports.
    pub const KIND_NAMES: [&'static str; 13] = [
        "core_state",
        "issue",
        "cache_access",
        "bus_grant",
        "bus_data",
        "ozq_recirc",
        "produce",
        "consume",
        "queue_depth",
        "sync_wait",
        "sc_fill",
        "sc_hit",
        "forward",
    ];

    /// Index into [`TraceEvent::KIND_NAMES`] for this event's kind.
    pub fn kind_index(&self) -> usize {
        match self {
            TraceEvent::CoreState { .. } => 0,
            TraceEvent::Issue { .. } => 1,
            TraceEvent::CacheAccess { .. } => 2,
            TraceEvent::BusGrant { .. } => 3,
            TraceEvent::BusData { .. } => 4,
            TraceEvent::OzqRecirc { .. } => 5,
            TraceEvent::Produce { .. } => 6,
            TraceEvent::Consume { .. } => 7,
            TraceEvent::QueueDepth { .. } => 8,
            TraceEvent::SyncWait { .. } => 9,
            TraceEvent::ScFill { .. } => 10,
            TraceEvent::ScHit { .. } => 11,
            TraceEvent::Forward { .. } => 12,
        }
    }

    /// The event's cycle stamp.
    pub fn at(&self) -> u64 {
        match *self {
            TraceEvent::CoreState { at, .. }
            | TraceEvent::Issue { at, .. }
            | TraceEvent::CacheAccess { at, .. }
            | TraceEvent::BusGrant { at, .. }
            | TraceEvent::BusData { at, .. }
            | TraceEvent::OzqRecirc { at, .. }
            | TraceEvent::Produce { at, .. }
            | TraceEvent::Consume { at, .. }
            | TraceEvent::QueueDepth { at, .. }
            | TraceEvent::SyncWait { at, .. }
            | TraceEvent::ScFill { at, .. }
            | TraceEvent::ScHit { at, .. }
            | TraceEvent::Forward { at, .. } => at,
        }
    }

    /// A canonical single-line rendering, stable across runs and
    /// processes, used by determinism tests to hash event streams.
    pub fn canonical_line(&self) -> String {
        match self {
            TraceEvent::CoreState { core, at, state } => {
                let s = match state {
                    CoreActivity::Busy => "busy".to_string(),
                    CoreActivity::Stall(c) => format!("stall:{}", c.label()),
                };
                format!("@{at} {core} {s}")
            }
            TraceEvent::Issue { core, at, comm } => {
                format!("@{at} {core} issue comm={comm}")
            }
            TraceEvent::CacheAccess {
                core,
                at,
                level,
                hit,
            } => {
                format!(
                    "@{at} {core} {} {}",
                    level.label(),
                    if *hit { "hit" } else { "miss" }
                )
            }
            TraceEvent::BusGrant {
                core,
                at,
                streaming,
            } => format!("@{at} bus grant {core} streaming={streaming}"),
            TraceEvent::BusData { at, cycles } => format!("@{at} bus data cycles={cycles}"),
            TraceEvent::OzqRecirc { core, at } => format!("@{at} {core} ozq-recirc"),
            TraceEvent::Produce {
                core,
                queue,
                seq,
                at,
            } => format!("@{at} {core} produce {queue}#{seq}"),
            TraceEvent::Consume {
                core,
                queue,
                seq,
                at,
            } => format!("@{at} {core} consume {queue}#{seq}"),
            TraceEvent::QueueDepth { queue, at, depth } => {
                format!("@{at} {queue} depth={depth}")
            }
            TraceEvent::SyncWait { core, queue, at } => {
                format!("@{at} {core} wait {queue}")
            }
            TraceEvent::ScFill { queue, at } => format!("@{at} {queue} sc-fill"),
            TraceEvent::ScHit { queue, at } => format!("@{at} {queue} sc-hit"),
            TraceEvent::Forward { at, line } => format!("@{at} bus forward line={line}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_index_matches_names() {
        let events = [
            TraceEvent::CoreState {
                core: CoreId(0),
                at: 0,
                state: CoreActivity::Busy,
            },
            TraceEvent::Issue {
                core: CoreId(0),
                at: 0,
                comm: false,
            },
            TraceEvent::CacheAccess {
                core: CoreId(0),
                at: 0,
                level: CacheLevel::L1,
                hit: true,
            },
            TraceEvent::BusGrant {
                core: CoreId(0),
                at: 0,
                streaming: false,
            },
            TraceEvent::BusData { at: 0, cycles: 1 },
            TraceEvent::OzqRecirc {
                core: CoreId(0),
                at: 0,
            },
            TraceEvent::Produce {
                core: CoreId(0),
                queue: QueueId(0),
                seq: 0,
                at: 0,
            },
            TraceEvent::Consume {
                core: CoreId(1),
                queue: QueueId(0),
                seq: 0,
                at: 0,
            },
            TraceEvent::QueueDepth {
                queue: QueueId(0),
                at: 0,
                depth: 0,
            },
            TraceEvent::SyncWait {
                core: CoreId(1),
                queue: QueueId(0),
                at: 0,
            },
            TraceEvent::ScFill {
                queue: QueueId(0),
                at: 0,
            },
            TraceEvent::ScHit {
                queue: QueueId(0),
                at: 0,
            },
            TraceEvent::Forward { at: 0, line: 0 },
        ];
        assert_eq!(events.len(), TraceEvent::KIND_NAMES.len());
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.kind_index(), i, "{e:?}");
        }
    }

    #[test]
    fn canonical_lines_are_distinct() {
        let a = TraceEvent::ScFill {
            queue: QueueId(3),
            at: 7,
        };
        let b = TraceEvent::ScHit {
            queue: QueueId(3),
            at: 7,
        };
        assert_ne!(a.canonical_line(), b.canonical_line());
        assert_eq!(a.at(), 7);
    }
}

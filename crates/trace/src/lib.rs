//! Cycle-level event tracing and unified metrics for the `hfs` simulator.
//!
//! Every hardware model in the workspace (cores, caches, bus, streaming
//! backends) carries a cloned [`Tracer`] handle and emits typed
//! [`TraceEvent`]s at the moments that matter: issue and stall cycles with
//! [`StallComponent`] attribution, cache hits and misses at each level,
//! bus grants and data-phase occupancy, OzQ recirculations, and — most
//! importantly for the paper's argument — `produce`/`consume` pairs whose
//! matched spans make consume-to-use latency a first-class traced
//! quantity.
//!
//! The disabled path is a branch on a `None`: [`Tracer::disabled`] holds
//! no buffer, and [`Tracer::emit`] takes a closure so the event is never
//! even constructed. Simulated cycle counts are bit-identical with or
//! without tracing.
//!
//! Two consumers sit on top of the event stream:
//!
//! * [`chrome_trace_json`] renders a recorded stream as Chrome
//!   trace-event JSON loadable in Perfetto or `chrome://tracing`, one
//!   track per core, the bus, and each queue;
//! * [`MetricsReport`] is the unified machine-readable summary (named
//!   counters, histogram summaries with p50/p95/p99, and the Figure 7
//!   stall breakdown) embedded in run results and harness artifacts.
//!
//! # Example
//!
//! ```
//! use hfs_isa::{CoreId, QueueId};
//! use hfs_trace::{TraceEvent, Tracer};
//!
//! let t = Tracer::recording();
//! t.emit(|| TraceEvent::Produce { core: CoreId(0), queue: QueueId(3), seq: 0, at: 10 });
//! t.emit(|| TraceEvent::Consume { core: CoreId(1), queue: QueueId(3), seq: 0, at: 14 });
//! assert_eq!(t.take_events().len(), 2);
//! assert_eq!(t.consume_to_use().percentile(50.0), Some(4));
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

mod chrome;
mod event;
mod report;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use hfs_sim::stats::Histogram;

pub use chrome::chrome_trace_json;
pub use event::{CacheLevel, CoreActivity, TraceEvent};
pub use report::{HistogramSummary, MetricsReport};

/// Bucket range (cycles) of the consume-to-use latency histogram.
const CONSUME_TO_USE_BUCKETS: usize = 1024;
/// Bucket range (entries) of the queue-occupancy histogram.
const QUEUE_DEPTH_BUCKETS: usize = 256;

/// The mutable state behind an enabled tracer.
#[derive(Debug)]
struct TraceBuffer {
    /// Whether the raw event stream is kept (recording mode). Metrics-only
    /// tracers digest events into histograms/counts and drop them.
    retain: bool,
    events: Vec<TraceEvent>,
    kind_counts: [u64; TraceEvent::KIND_NAMES.len()],
    /// Outstanding produce timestamps keyed by `(queue, seq)`, matched
    /// against consumes in arrival order. BTreeMap keeps drains (and any
    /// future iteration) deterministic.
    produce_at: BTreeMap<(u16, u64), u64>,
    consume_to_use: Histogram,
    queue_depth: Histogram,
}

impl TraceBuffer {
    fn new(retain: bool) -> Self {
        TraceBuffer {
            retain,
            events: Vec::new(),
            kind_counts: [0; TraceEvent::KIND_NAMES.len()],
            produce_at: BTreeMap::new(),
            consume_to_use: Histogram::new(CONSUME_TO_USE_BUCKETS),
            queue_depth: Histogram::new(QUEUE_DEPTH_BUCKETS),
        }
    }

    fn push(&mut self, event: TraceEvent) {
        self.kind_counts[event.kind_index()] += 1;
        match event {
            TraceEvent::Produce { queue, seq, at, .. } => {
                self.produce_at.insert((queue.0, seq), at);
            }
            TraceEvent::Consume { queue, seq, at, .. } => {
                if let Some(p) = self.produce_at.remove(&(queue.0, seq)) {
                    self.consume_to_use.record(at.saturating_sub(p));
                }
            }
            TraceEvent::QueueDepth { depth, .. } => {
                self.queue_depth.record(depth);
            }
            _ => {}
        }
        if self.retain {
            self.events.push(event);
        }
    }
}

/// A cloneable handle to a per-machine trace sink.
///
/// All clones of one tracer share a single buffer, so the machine can
/// hand a handle to every component it owns. Handles are deliberately
/// *not* `Send`: a machine (and thus its tracer) lives entirely on one
/// harness worker thread.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<TraceBuffer>>>,
}

impl Tracer {
    /// The no-op tracer: [`Tracer::emit`] is a branch on a `None` and the
    /// event closure is never run.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer that retains the full event stream (for export) in
    /// addition to digesting metrics.
    pub fn recording() -> Tracer {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceBuffer::new(true)))),
        }
    }

    /// A tracer that digests events into counts and histograms but drops
    /// the raw stream — bounded memory for arbitrarily long runs.
    pub fn metrics_only() -> Tracer {
        Tracer {
            inner: Some(Rc::new(RefCell::new(TraceBuffer::new(false)))),
        }
    }

    /// Whether events are being collected at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether the raw event stream is being retained (recording mode).
    ///
    /// The machine's event-driven scheduler pins a *recording* machine to
    /// per-cycle stepping so exported event streams stay byte-identical,
    /// but metrics-only tracers (fixed-order counts, order-insensitive
    /// histograms) are safe to fast-forward.
    pub fn is_recording(&self) -> bool {
        match &self.inner {
            Some(buf) => buf.borrow().retain,
            None => false,
        }
    }

    /// Emits an event. The closure defers construction so the disabled
    /// path costs a single branch.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(buf) = &self.inner {
            buf.borrow_mut().push(f());
        }
    }

    /// Takes the recorded event stream, leaving the buffer empty.
    /// Empty for disabled and metrics-only tracers.
    pub fn take_events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(buf) => std::mem::take(&mut buf.borrow_mut().events),
            None => Vec::new(),
        }
    }

    /// Snapshot of the consume-to-use latency histogram (cycles between a
    /// queue element's produce and the consume that uses it).
    pub fn consume_to_use(&self) -> Histogram {
        match &self.inner {
            Some(buf) => buf.borrow().consume_to_use.clone(),
            None => Histogram::new(CONSUME_TO_USE_BUCKETS),
        }
    }

    /// Snapshot of the queue-occupancy histogram (entries outstanding at
    /// each sampled produce).
    pub fn queue_depth(&self) -> Histogram {
        match &self.inner {
            Some(buf) => buf.borrow().queue_depth.clone(),
            None => Histogram::new(QUEUE_DEPTH_BUCKETS),
        }
    }

    /// Per-kind event totals in a fixed order (see
    /// [`TraceEvent::KIND_NAMES`]).
    pub fn event_counts(&self) -> Vec<(&'static str, u64)> {
        match &self.inner {
            Some(buf) => {
                let buf = buf.borrow();
                TraceEvent::KIND_NAMES
                    .iter()
                    .zip(buf.kind_counts.iter())
                    .map(|(&n, &c)| (n, c))
                    .collect()
            }
            None => TraceEvent::KIND_NAMES.iter().map(|&n| (n, 0)).collect(),
        }
    }
}

/// Canonical one-line-per-event text rendering of an event stream, used
/// by determinism tests to hash and compare recorded traces.
pub fn event_stream_text(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.canonical_line());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfs_isa::{CoreId, QueueId};
    use hfs_sim::stats::StallComponent;

    #[test]
    fn disabled_tracer_never_runs_the_closure() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.emit(|| panic!("closure must not run on the disabled path"));
        assert!(t.take_events().is_empty());
        assert_eq!(t.consume_to_use().count(), 0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Tracer::recording();
        let t2 = t.clone();
        t2.emit(|| TraceEvent::Forward { at: 5, line: 9 });
        let events = t.take_events();
        assert_eq!(events.len(), 1);
        assert!(t2.take_events().is_empty(), "take drains the shared buffer");
    }

    #[test]
    fn produce_consume_matching_feeds_latency_histogram() {
        let t = Tracer::recording();
        for (seq, (p, c)) in [(10u64, 13u64), (11, 19), (20, 21)].iter().enumerate() {
            let seq = seq as u64;
            t.emit(|| TraceEvent::Produce {
                core: CoreId(0),
                queue: QueueId(7),
                seq,
                at: *p,
            });
            t.emit(|| TraceEvent::Consume {
                core: CoreId(1),
                queue: QueueId(7),
                seq,
                at: *c,
            });
        }
        let h = t.consume_to_use();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 3 + 8 + 1);
        assert_eq!(h.percentile(50.0), Some(3));
    }

    #[test]
    fn unmatched_consume_records_nothing() {
        let t = Tracer::metrics_only();
        t.emit(|| TraceEvent::Consume {
            core: CoreId(1),
            queue: QueueId(0),
            seq: 42,
            at: 9,
        });
        assert_eq!(t.consume_to_use().count(), 0);
        // metrics-only drops the raw stream but still counts kinds.
        assert!(t.take_events().is_empty());
        let counts = t.event_counts();
        assert_eq!(counts.iter().find(|(n, _)| *n == "consume").unwrap().1, 1);
    }

    #[test]
    fn queue_depth_histogram_samples() {
        let t = Tracer::metrics_only();
        for depth in [1u64, 3, 3] {
            t.emit(|| TraceEvent::QueueDepth {
                queue: QueueId(2),
                at: 0,
                depth,
            });
        }
        let h = t.queue_depth();
        assert_eq!(h.count(), 3);
        assert_eq!(h.bucket(3), 2);
    }

    #[test]
    fn event_counts_order_is_fixed() {
        let t = Tracer::metrics_only();
        let names: Vec<&str> = t.event_counts().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, TraceEvent::KIND_NAMES.to_vec());
    }

    #[test]
    fn canonical_text_is_line_per_event() {
        let events = vec![
            TraceEvent::CoreState {
                core: CoreId(0),
                at: 1,
                state: CoreActivity::Stall(StallComponent::Bus),
            },
            TraceEvent::BusData { at: 2, cycles: 4 },
        ];
        let text = event_stream_text(&events);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("stall:BUS"));
    }
}

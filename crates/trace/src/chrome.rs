//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! The exporter is self-contained string building — the harness's JSON
//! module lives above this crate in the dependency order, and the trace
//! format is narrow enough (ASCII names, integer timestamps) that a tiny
//! escaper suffices.
//!
//! Track layout (all under `pid` 0):
//!
//! * `tid` 0..N — one track per core, carrying coalesced Busy/Stall
//!   duration spans plus cache-access, produce/consume, sync-wait and
//!   OzQ-recirculation instants;
//! * `tid` 100 — the shared bus: grant instants, data-phase occupancy
//!   spans, and write-forward instants;
//! * `tid` 200+q — one track per queue `q`: produce→consume latency
//!   spans, stream-cache instants, and an occupancy counter series.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::event::{CoreActivity, TraceEvent};

/// Bus track id.
const BUS_TID: u64 = 100;
/// First queue track id (queue `q` lands on `QUEUE_TID_BASE + q`).
const QUEUE_TID_BASE: u64 = 200;

/// Escapes a string for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// One JSON event object under construction.
struct Ev {
    json: String,
}

impl Ev {
    fn new(ph: char, name: &str, tid: u64, ts: u64) -> Ev {
        Ev {
            json: format!(
                "{{\"name\":\"{}\",\"ph\":\"{ph}\",\"pid\":0,\"tid\":{tid},\"ts\":{ts}",
                escape(name)
            ),
        }
    }

    fn field(mut self, key: &str, value: String) -> Ev {
        let _ = write!(self.json, ",\"{key}\":{value}");
        self
    }

    fn finish(mut self) -> String {
        self.json.push('}');
        self.json
    }
}

fn instant(name: &str, tid: u64, ts: u64) -> String {
    Ev::new('i', name, tid, ts)
        .field("s", "\"t\"".to_string())
        .finish()
}

fn span(name: &str, tid: u64, ts: u64, dur: u64) -> String {
    Ev::new('X', name, tid, ts)
        .field("dur", dur.to_string())
        .finish()
}

fn counter(name: &str, tid: u64, ts: u64, series: &str, value: u64) -> String {
    Ev::new('C', name, tid, ts)
        .field("args", format!("{{\"{series}\":{value}}}"))
        .finish()
}

fn thread_name(tid: u64, name: &str) -> String {
    Ev::new('M', "thread_name", tid, 0)
        .field("args", format!("{{\"name\":\"{}\"}}", escape(name)))
        .finish()
}

/// A run of identical per-cycle core states being coalesced into a span.
struct StateRun {
    state: CoreActivity,
    start: u64,
    /// Last cycle covered (inclusive).
    end: u64,
}

/// Renders a recorded event stream as a complete Chrome trace-event JSON
/// document (`{"traceEvents":[...]}`).
///
/// Timestamps are simulated cycles (1 "µs" per cycle in the viewer).
/// Per-cycle [`TraceEvent::CoreState`] samples are coalesced into
/// duration spans; [`TraceEvent::Issue`] events are metrics-only and not
/// rendered. Output is byte-deterministic for a given event stream.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    // Discover the tracks present, in deterministic order.
    let mut cores: BTreeSet<u8> = BTreeSet::new();
    let mut queues: BTreeSet<u16> = BTreeSet::new();
    let mut has_bus = false;
    for e in events {
        match e {
            TraceEvent::CoreState { core, .. }
            | TraceEvent::Issue { core, .. }
            | TraceEvent::CacheAccess { core, .. }
            | TraceEvent::OzqRecirc { core, .. } => {
                cores.insert(core.0);
            }
            TraceEvent::BusGrant { core, .. } => {
                cores.insert(core.0);
                has_bus = true;
            }
            TraceEvent::BusData { .. } | TraceEvent::Forward { .. } => has_bus = true,
            TraceEvent::Produce { core, queue, .. } | TraceEvent::Consume { core, queue, .. } => {
                cores.insert(core.0);
                queues.insert(queue.0);
            }
            TraceEvent::SyncWait { core, queue, .. } => {
                cores.insert(core.0);
                queues.insert(queue.0);
            }
            TraceEvent::QueueDepth { queue, .. }
            | TraceEvent::ScFill { queue, .. }
            | TraceEvent::ScHit { queue, .. } => {
                queues.insert(queue.0);
            }
        }
    }

    let mut out: Vec<String> = Vec::new();
    for &c in &cores {
        out.push(thread_name(u64::from(c), &format!("core{c}")));
    }
    if has_bus {
        out.push(thread_name(BUS_TID, "bus"));
    }
    for &q in &queues {
        out.push(thread_name(QUEUE_TID_BASE + u64::from(q), &format!("q{q}")));
    }

    // Coalesce CoreState samples into spans, per core.
    let max_core = cores.iter().next_back().map_or(0, |&c| usize::from(c) + 1);
    let mut runs: Vec<Option<StateRun>> = (0..max_core).map(|_| None).collect();
    let flush = |run: &mut Option<StateRun>, tid: u64, out: &mut Vec<String>| {
        if let Some(r) = run.take() {
            out.push(span(&r.state.label(), tid, r.start, r.end - r.start + 1));
        }
    };

    // Open produce spans per (queue, seq): matched on consume.
    let mut open: std::collections::BTreeMap<(u16, u64), u64> = std::collections::BTreeMap::new();

    for e in events {
        match e {
            TraceEvent::CoreState { core, at, state } => {
                let i = core.index();
                match &mut runs[i] {
                    Some(r) if r.state == *state && *at == r.end + 1 => r.end = *at,
                    r => {
                        flush(r, u64::from(core.0), &mut out);
                        *r = Some(StateRun {
                            state: *state,
                            start: *at,
                            end: *at,
                        });
                    }
                }
            }
            TraceEvent::Issue { .. } => {}
            TraceEvent::CacheAccess {
                core,
                at,
                level,
                hit,
            } => {
                let name = format!("{} {}", level.label(), if *hit { "hit" } else { "miss" });
                out.push(instant(&name, u64::from(core.0), *at));
            }
            TraceEvent::BusGrant {
                core,
                at,
                streaming,
            } => {
                let name = if *streaming {
                    format!("grant core{} (stream)", core.0)
                } else {
                    format!("grant core{}", core.0)
                };
                out.push(instant(&name, BUS_TID, *at));
            }
            TraceEvent::BusData { at, cycles } => {
                out.push(span("data", BUS_TID, *at, (*cycles).max(1)));
            }
            TraceEvent::OzqRecirc { core, at } => {
                out.push(instant("ozq-recirc", u64::from(core.0), *at));
            }
            TraceEvent::Produce {
                core,
                queue,
                seq,
                at,
            } => {
                open.insert((queue.0, *seq), *at);
                out.push(instant(
                    &format!("produce {queue}#{seq}"),
                    u64::from(core.0),
                    *at,
                ));
            }
            TraceEvent::Consume {
                core,
                queue,
                seq,
                at,
            } => {
                if let Some(start) = open.remove(&(queue.0, *seq)) {
                    out.push(span(
                        &format!("{queue}#{seq}"),
                        QUEUE_TID_BASE + u64::from(queue.0),
                        start,
                        at.saturating_sub(start).max(1),
                    ));
                }
                out.push(instant(
                    &format!("consume {queue}#{seq}"),
                    u64::from(core.0),
                    *at,
                ));
            }
            TraceEvent::QueueDepth { queue, at, depth } => {
                out.push(counter(
                    &format!("{queue} depth"),
                    QUEUE_TID_BASE + u64::from(queue.0),
                    *at,
                    "depth",
                    *depth,
                ));
            }
            TraceEvent::SyncWait { core, queue, at } => {
                out.push(instant(&format!("wait {queue}"), u64::from(core.0), *at));
            }
            TraceEvent::ScFill { queue, at } => {
                out.push(instant("sc-fill", QUEUE_TID_BASE + u64::from(queue.0), *at));
            }
            TraceEvent::ScHit { queue, at } => {
                out.push(instant("sc-hit", QUEUE_TID_BASE + u64::from(queue.0), *at));
            }
            TraceEvent::Forward { at, line } => {
                out.push(instant(&format!("forward line {line}"), BUS_TID, *at));
            }
        }
    }
    for (i, run) in runs.iter_mut().enumerate() {
        flush(run, i as u64, &mut out);
    }

    let mut doc = String::from("{\"traceEvents\":[\n");
    doc.push_str(&out.join(",\n"));
    doc.push_str("\n]}\n");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use hfs_isa::{CoreId, QueueId};
    use hfs_sim::stats::StallComponent;

    #[test]
    fn coalesces_core_state_runs() {
        let events = vec![
            TraceEvent::CoreState {
                core: CoreId(0),
                at: 0,
                state: CoreActivity::Busy,
            },
            TraceEvent::CoreState {
                core: CoreId(0),
                at: 1,
                state: CoreActivity::Busy,
            },
            TraceEvent::CoreState {
                core: CoreId(0),
                at: 2,
                state: CoreActivity::Stall(StallComponent::Bus),
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"name\":\"Busy\""));
        assert!(json.contains("\"dur\":2"));
        assert!(json.contains("\"name\":\"Stall:BUS\""));
        // One metadata + two spans.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn produce_consume_becomes_a_queue_span() {
        let events = vec![
            TraceEvent::Produce {
                core: CoreId(0),
                queue: QueueId(3),
                seq: 5,
                at: 10,
            },
            TraceEvent::Consume {
                core: CoreId(1),
                queue: QueueId(3),
                seq: 5,
                at: 25,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"name\":\"q3#5\",\"ph\":\"X\""));
        assert!(json.contains("\"tid\":203"));
        assert!(json.contains("\"dur\":15"));
        // Track names for both cores and the queue.
        assert!(json.contains("\"name\":\"core0\""));
        assert!(json.contains("\"name\":\"core1\""));
        assert!(json.contains("\"name\":\"q3\""));
    }

    #[test]
    fn counter_and_bus_events_render() {
        let events = vec![
            TraceEvent::QueueDepth {
                queue: QueueId(0),
                at: 4,
                depth: 7,
            },
            TraceEvent::BusData { at: 6, cycles: 8 },
            TraceEvent::BusGrant {
                core: CoreId(1),
                at: 5,
                streaming: true,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("{\"depth\":7}"));
        assert!(json.contains("\"name\":\"data\""));
        assert!(json.contains("grant core1 (stream)"));
        assert!(json.contains("\"name\":\"bus\""));
    }

    #[test]
    fn empty_stream_is_valid_document() {
        let json = chrome_trace_json(&[]);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
    }
}

#!/usr/bin/env bash
# Pre-PR gate: run this before every push.
#
#   scripts/ci.sh          # fmt + clippy + build + tier-1 tests (quick)
#   HFS_FULL=1 scripts/ci.sh   # same, but without the quick iteration cap
#
# The workspace is std-only, so everything here works with no network or
# registry access.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1)"
if [ -n "${HFS_FULL:-}" ]; then
    cargo test --workspace -q
else
    HFS_QUICK=1 cargo test --workspace -q
fi

echo "==> trace smoke (golden cycles + Chrome trace validity)"
cargo run --release -p hfs-bench --bin trace_smoke

echo "==> machine check: fault injection (checker must catch every seeded bug)"
cargo test --release -q --test check_faults

echo "==> machine check: trace smoke under HFS_CHECK=1 (checked run, same goldens)"
HFS_CHECK=1 cargo run --release -p hfs-bench --bin trace_smoke

echo "==> machine check: quick fig6 sweep under HFS_CHECK=1"
# Fresh results dir + cache off: cached entries would skip the checked
# re-simulation this gate exists to run.
HFS_CHECK=1 HFS_QUICK=1 HFS_NO_CACHE=1 HFS_NO_PROGRESS=1 \
    HFS_RESULTS_DIR=target/check_results \
    cargo run --release -p hfs-bench --bin fig6
if grep -q '"status": *"check_failed"' target/check_results/*.json 2>/dev/null; then
    echo "machine check reported violations in fig6 artifacts"; exit 1
fi

echo "==> simbench --quick (hot-loop throughput sanity)"
cargo run --release -p hfs-bench --bin simbench -- --quick
QUICK_JSON=target/BENCH_simloop_quick.json
[ -s "$QUICK_JSON" ] || { echo "simbench wrote no $QUICK_JSON"; exit 1; }
# Well-formedness gate; simbench itself prints the informational delta
# against the committed BENCH_simloop.json baseline.
if command -v python3 >/dev/null 2>&1; then
    python3 - "$QUICK_JSON" <<'EOF'
import json, sys
quick = json.load(open(sys.argv[1]))
assert quick["schema"] == "simbench-v1" and quick["points"], "malformed quick bench"
for p in quick["points"]:
    assert p["sim_cycles"] > 0 and p["cycles_per_sec"] > 0, f"degenerate point {p}"
EOF
else
    grep -q '"schema": "simbench-v1"' "$QUICK_JSON" || { echo "malformed $QUICK_JSON"; exit 1; }
fi

echo "==> ci OK"

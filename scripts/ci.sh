#!/usr/bin/env bash
# Pre-PR gate: run this before every push.
#
#   scripts/ci.sh          # fmt + clippy + build + tier-1 tests (quick)
#   HFS_FULL=1 scripts/ci.sh   # same, but without the quick iteration cap
#
# The workspace is std-only, so everything here works with no network or
# registry access.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test (tier-1)"
if [ -n "${HFS_FULL:-}" ]; then
    cargo test --workspace -q
else
    HFS_QUICK=1 cargo test --workspace -q
fi

echo "==> trace smoke (golden cycles + Chrome trace validity)"
cargo run --release -p hfs-bench --bin trace_smoke

echo "==> scheduler equivalence (event/poll/per-cycle, both HFS_SCHED modes)"
# The suites pin modes explicitly, but running them under both env
# settings also exercises the dispatcher's env plumbing end to end.
cargo test --release -q --test sched_equivalence --test fastforward
HFS_SCHED=poll cargo test --release -q --test sched_equivalence --test fastforward

echo "==> trace smoke under HFS_SCHED=poll (same goldens as the event scheduler)"
HFS_SCHED=poll cargo run --release -p hfs-bench --bin trace_smoke

echo "==> machine check: fault injection (checker must catch every seeded bug)"
cargo test --release -q --test check_faults

echo "==> machine check: trace smoke under HFS_CHECK=1 (checked run, same goldens)"
HFS_CHECK=1 cargo run --release -p hfs-bench --bin trace_smoke

echo "==> machine check: quick fig6 sweep under HFS_CHECK=1"
# Fresh results dir + cache off: cached entries would skip the checked
# re-simulation this gate exists to run.
HFS_CHECK=1 HFS_QUICK=1 HFS_NO_CACHE=1 HFS_NO_PROGRESS=1 \
    HFS_RESULTS_DIR=target/check_results \
    cargo run --release -p hfs-bench --bin fig6
if grep -q '"status": *"check_failed"' target/check_results/*.json 2>/dev/null; then
    echo "machine check reported violations in fig6 artifacts"; exit 1
fi

echo "==> simbench --quick --check (hot-loop throughput gate vs committed baseline)"
# --check fails the run when a point regresses >10% vs its committed
# BENCH_simloop.json row (after one damped re-measure).
cargo run --release -p hfs-bench --bin simbench -- --quick --check
QUICK_JSON=target/BENCH_simloop_quick.json
[ -s "$QUICK_JSON" ] || { echo "simbench wrote no $QUICK_JSON"; exit 1; }
# Well-formedness gate on the written artifact.
if command -v python3 >/dev/null 2>&1; then
    python3 - "$QUICK_JSON" <<'EOF'
import json, sys
quick = json.load(open(sys.argv[1]))
assert quick["schema"] == "simbench-v2" and quick["points"], "malformed quick bench"
assert isinstance(quick["geomean_speedup"], (int, float)), "missing geomean_speedup"
for p in quick["points"]:
    assert p["sim_cycles"] > 0 and p["cycles_per_sec"] > 0, f"degenerate point {p}"
    assert p["sched"] in ("event", "poll"), f"missing sched tag {p}"
EOF
else
    grep -q '"schema": "simbench-v2"' "$QUICK_JSON" || { echo "malformed $QUICK_JSON"; exit 1; }
fi

echo "==> hfs-serve smoke (concurrent clients, byte-identical artifacts, dedup, drain)"
SERVE_TMP=$(mktemp -d)
SERVE_PID=
serve_cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$SERVE_TMP"
}
trap serve_cleanup EXIT
SOCK="$SERVE_TMP/hfs.sock"

# Offline golden: the quick fig6 sweep through the plain engine.
HFS_QUICK=1 HFS_NO_CACHE=1 HFS_NO_PROGRESS=1 \
    HFS_RESULTS_DIR="$SERVE_TMP/offline" \
    target/release/fig6 >/dev/null

# The same sweep as a server-submittable spec.
HFS_QUICK=1 target/release/fig6 --dump-jobs "$SERVE_TMP/fig6_jobs.json"

# Server on a private socket with a fresh cache.
HFS_CACHE_DIR="$SERVE_TMP/cache" \
    target/release/hfs-serve --sock "$SOCK" --workers 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "hfs-serve did not come up"; exit 1; }

# Two concurrent clients submit the identical sweep.
HFS_SOCK="$SOCK" HFS_NO_PROGRESS=1 \
    target/release/hfs-client submit "$SERVE_TMP/fig6_jobs.json" \
    --out "$SERVE_TMP/client_a" >/dev/null &
CLIENT_A=$!
HFS_SOCK="$SOCK" HFS_NO_PROGRESS=1 \
    target/release/hfs-client submit "$SERVE_TMP/fig6_jobs.json" \
    --out "$SERVE_TMP/client_b" >/dev/null &
CLIENT_B=$!
wait "$CLIENT_A"
wait "$CLIENT_B"

# Server-side artifacts must be byte-identical to the offline run.
cmp "$SERVE_TMP/offline/fig6.json" "$SERVE_TMP/client_a/fig6.json" \
    || { echo "client A artifact differs from offline fig6"; exit 1; }
cmp "$SERVE_TMP/offline/fig6.json" "$SERVE_TMP/client_b/fig6.json" \
    || { echo "client B artifact differs from offline fig6"; exit 1; }

# Single-flight + shared cache: the server must have executed at most
# one simulation per unique job despite two full submissions.
STATS=$(HFS_SOCK="$SOCK" target/release/hfs-client stats)
echo "$STATS"
if command -v python3 >/dev/null 2>&1; then
    python3 - <<EOF
import json
s = json.loads('''$STATS''')
assert s["submitted"] == 2 * s["executed"], f"expected 2x dedup: {s}"
assert s["deduped"] + s["cache_hits"] == s["executed"], f"dedup accounting: {s}"
assert s["delivered"] == s["submitted"], f"every job delivered: {s}"
EOF
else
    echo "$STATS" | grep -q '"deduped": 0' && { echo "no dedup observed"; exit 1; }
fi

# Clean shutdown: drain acknowledged, server exits zero.
HFS_SOCK="$SOCK" target/release/hfs-client shutdown >/dev/null
wait "$SERVE_PID" || { echo "hfs-serve exited non-zero"; exit 1; }
SERVE_PID=

echo "==> ci OK"

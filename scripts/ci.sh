#!/usr/bin/env bash
# Pre-PR gate: run this before every push.
#
#   scripts/ci.sh          # fmt + clippy + build + tier-1 tests (quick)
#   HFS_FULL=1 scripts/ci.sh   # same, but without the quick iteration cap
#
# The workspace is std-only, so everything here works with no network or
# registry access.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test (tier-1)"
if [ -n "${HFS_FULL:-}" ]; then
    cargo test --workspace -q
else
    HFS_QUICK=1 cargo test --workspace -q
fi

echo "==> trace smoke (golden cycles + Chrome trace validity)"
cargo run --release -p hfs-bench --bin trace_smoke

echo "==> scheduler equivalence (event/poll/per-cycle, both HFS_SCHED modes)"
# The suites pin modes explicitly, but running them under both env
# settings also exercises the dispatcher's env plumbing end to end.
cargo test --release -q --test sched_equivalence --test fastforward
HFS_SCHED=poll cargo test --release -q --test sched_equivalence --test fastforward

echo "==> trace smoke under HFS_SCHED=poll (same goldens as the event scheduler)"
HFS_SCHED=poll cargo run --release -p hfs-bench --bin trace_smoke

echo "==> machine check: fault injection, once per protocol (every seeded bug caught)"
# Each sweep arms every mutation applicable under that protocol and
# requires the fired rule to live in that protocol's invariant table —
# zero silent survivors.
cargo test --release -q --test check_faults every_seeded_mutation_is_detected_msi
cargo test --release -q --test check_faults every_seeded_mutation_is_detected_mesi
cargo test --release -q --test check_faults every_seeded_mutation_is_detected_dragon
cargo test --release -q --test check_faults disarmed_machine_is_unperturbed

echo "==> machine check: trace smoke under HFS_CHECK=1 (checked run, same goldens)"
HFS_CHECK=1 cargo run --release -p hfs-bench --bin trace_smoke

echo "==> machine check: quick fig6 sweep under HFS_CHECK=1"
# Fresh results dir + cache off: cached entries would skip the checked
# re-simulation this gate exists to run.
HFS_CHECK=1 HFS_QUICK=1 HFS_NO_CACHE=1 HFS_NO_PROGRESS=1 \
    HFS_RESULTS_DIR=target/check_results \
    cargo run --release -p hfs-bench --bin fig6
if grep -q '"status": *"check_failed"' target/check_results/*.json 2>/dev/null; then
    echo "machine check reported violations in fig6 artifacts"; exit 1
fi

echo "==> protocol axis: quick MESI + Dragon fig6 artifact smoke"
# Non-default protocols suffix their artifact names, so the committed
# MSI goldens are untouched; each sweep must complete checker-clean.
for proto in mesi dragon; do
    HFS_PROTOCOL=$proto HFS_CHECK=1 HFS_QUICK=1 HFS_NO_CACHE=1 HFS_NO_PROGRESS=1 \
        HFS_RESULTS_DIR=target/check_results \
        cargo run --release -p hfs-bench --bin fig6
    [ -s "target/check_results/fig6__$proto.json" ] \
        || { echo "fig6 sweep under HFS_PROTOCOL=$proto wrote no suffixed artifact"; exit 1; }
    if grep -q '"status": *"check_failed"' "target/check_results/fig6__$proto.json"; then
        echo "machine check reported violations in fig6__$proto artifacts"; exit 1
    fi
done

echo "==> simbench --quick --check (hot-loop throughput gate vs committed baseline)"
# --check fails the run when a point regresses >10% vs its committed
# BENCH_simloop.json row (after one damped re-measure).
cargo run --release -p hfs-bench --bin simbench -- --quick --check
QUICK_JSON=target/BENCH_simloop_quick.json
[ -s "$QUICK_JSON" ] || { echo "simbench wrote no $QUICK_JSON"; exit 1; }
# Well-formedness gate on the written artifact.
if command -v python3 >/dev/null 2>&1; then
    python3 - "$QUICK_JSON" <<'EOF'
import json, sys
quick = json.load(open(sys.argv[1]))
assert quick["schema"] == "simbench-v2" and quick["points"], "malformed quick bench"
assert isinstance(quick["geomean_speedup"], (int, float)), "missing geomean_speedup"
for p in quick["points"]:
    assert p["sim_cycles"] > 0 and p["cycles_per_sec"] > 0, f"degenerate point {p}"
    assert p["sched"] in ("event", "poll"), f"missing sched tag {p}"
host = quick["host"]
assert host["nproc"] >= 1 and host["sched"] in ("event", "poll"), f"malformed host block {host}"
assert host["timestamp"], "missing host timestamp"
EOF
else
    grep -q '"schema": "simbench-v2"' "$QUICK_JSON" || { echo "malformed $QUICK_JSON"; exit 1; }
fi

echo "==> hfs-serve smoke (concurrent clients, byte-identical artifacts, dedup, drain)"
SERVE_TMP=$(mktemp -d)
SERVE_PID=
serve_cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    rm -rf "$SERVE_TMP"
}
trap serve_cleanup EXIT
SOCK="$SERVE_TMP/hfs.sock"

# Offline golden: the quick fig6 sweep through the plain engine.
HFS_QUICK=1 HFS_NO_CACHE=1 HFS_NO_PROGRESS=1 \
    HFS_RESULTS_DIR="$SERVE_TMP/offline" \
    target/release/fig6 >/dev/null

# Observability inertness: the same sweep with full debug logging
# (progress on, so job_done lines land in the log file) must write
# byte-identical artifacts.
HFS_QUICK=1 HFS_NO_CACHE=1 \
    HFS_RESULTS_DIR="$SERVE_TMP/offline_logged" \
    HFS_LOG=debug HFS_LOG_FILE="$SERVE_TMP/offline.log" \
    target/release/fig6 >/dev/null
cmp "$SERVE_TMP/offline/fig6.json" "$SERVE_TMP/offline_logged/fig6.json" \
    || { echo "HFS_LOG=debug changed fig6 artifact bytes"; exit 1; }
[ -s "$SERVE_TMP/offline.log" ] || { echo "HFS_LOG_FILE captured no log lines"; exit 1; }

# The same sweep as a server-submittable spec.
HFS_QUICK=1 target/release/fig6 --dump-jobs "$SERVE_TMP/fig6_jobs.json"

# Server on a private socket with a fresh cache, logging at debug to a
# file (inertness: must not perturb results).
HFS_CACHE_DIR="$SERVE_TMP/cache" \
    HFS_LOG=debug HFS_LOG_FILE="$SERVE_TMP/serve.log" \
    target/release/hfs-serve --sock "$SOCK" --workers 2 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "hfs-serve did not come up"; exit 1; }

# Three concurrent clients submit the identical sweep.
CLIENT_PIDS=()
for c in a b c; do
    HFS_SOCK="$SOCK" HFS_NO_PROGRESS=1 \
        target/release/hfs-client submit "$SERVE_TMP/fig6_jobs.json" \
        --out "$SERVE_TMP/client_$c" >/dev/null &
    CLIENT_PIDS+=($!)
done

# Mid-load metrics scrape: the exposition must already be well-formed
# (every line a comment or `name value`) and internally consistent,
# even while flights are still queued and running.
MID_METRICS=$(HFS_SOCK="$SOCK" target/release/hfs-client metrics)
if command -v python3 >/dev/null 2>&1; then
    python3 - <<EOF
text = '''$MID_METRICS'''
vals = {}
for line in text.strip().splitlines():
    assert line, "blank line in exposition"
    if line.startswith("#"):
        parts = line.split()
        assert parts[1] == "TYPE" and parts[3] in ("counter", "gauge", "summary"), line
        continue
    name, value = line.rsplit(" ", 1)
    vals[name] = float(value)
mid = vals.get("hfs_jobs_submitted_total", 0)
done = vals["hfs_jobs_deduped_total"] + vals["hfs_jobs_executed_total"] \
    + vals["hfs_jobs_cache_hits_total"]
assert mid >= done, f"submitted {mid} < resolved {done} mid-load"
assert vals["hfs_queue_depth"] >= 0 and vals["hfs_jobs_in_flight"] >= 0, vals
assert vals["hfs_open_connections"] >= 1, "scraping connection is open"
EOF
fi

for pid in "${CLIENT_PIDS[@]}"; do wait "$pid"; done

# Server-side artifacts must be byte-identical to the offline run.
for c in a b c; do
    cmp "$SERVE_TMP/offline/fig6.json" "$SERVE_TMP/client_$c/fig6.json" \
        || { echo "client $c artifact differs from offline fig6"; exit 1; }
done

# Crash recovery: --worker children spawned lazily during the sweep and
# stay resident. SIGKILL one, then submit a sweep of fresh content keys
# (max_cycles bumped — same simulated results) so both shards must
# dispatch: the dead worker's write fails, the server respawns it, and
# the sweep still completes with results identical to offline modulo
# the embedded keys.
WORKER_PID=$(pgrep -P "$SERVE_PID" | head -n1 || true)
[ -n "$WORKER_PID" ] || { echo "no --worker child spawned"; exit 1; }
kill -9 "$WORKER_PID"
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SERVE_TMP/fig6_jobs.json" "$SERVE_TMP/fig6_jobs_fresh.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
for job in doc["jobs"]:
    job["max_cycles"] -= 1  # fresh keys; caps stay far above real cycle counts
json.dump(doc, open(sys.argv[2], "w"))
EOF
    HFS_SOCK="$SOCK" HFS_NO_PROGRESS=1 \
        target/release/hfs-client submit "$SERVE_TMP/fig6_jobs_fresh.json" \
        --out "$SERVE_TMP/client_d" >/dev/null \
        || { echo "post-kill sweep failed"; exit 1; }
    python3 - "$SERVE_TMP/offline/fig6.json" "$SERVE_TMP/client_d/fig6.json" <<'EOF'
import json, sys
def strip(doc):
    for row in doc["jobs"]:
        row.pop("key", None)
    return doc
a, b = (strip(json.load(open(p))) for p in sys.argv[1:3])
assert a == b, "post-kill sweep results differ from offline (beyond keys)"
EOF
fi

# Single-flight + shared cache: the server must have executed at most
# one simulation per unique job despite three full submissions, and the
# stats frame must agree with the Prometheus exposition (one registry).
STATS=$(HFS_SOCK="$SOCK" target/release/hfs-client stats)
METRICS=$(HFS_SOCK="$SOCK" target/release/hfs-client metrics)
echo "$STATS"
if command -v python3 >/dev/null 2>&1; then
    python3 - <<EOF
import json
s = json.loads('''$STATS''')
# Three identical sweeps of J jobs (one execution per unique key) plus
# the post-kill sweep of J fresh keys (all executed, none shared).
J = len(json.load(open("$SERVE_TMP/fig6_jobs.json"))["jobs"])
assert s["submitted"] == 4 * J, f"expected 4 sweeps of {J}: {s}"
assert s["executed"] == 2 * J, f"expected one execution per unique key: {s}"
assert s["submitted"] == s["deduped"] + s["executed"] + s["cache_hits"], \
    f"delivery partition: {s}"
assert s["delivered"] == s["submitted"], f"every job delivered: {s}"

vals = {}
for line in '''$METRICS'''.strip().splitlines():
    if line.startswith("#"):
        continue
    name, value = line.rsplit(" ", 1)
    vals[name] = int(float(value))
assert vals["hfs_jobs_submitted_total"] == s["submitted"], (vals, s)
assert vals["hfs_jobs_executed_total"] == s["executed"], (vals, s)
assert vals["hfs_jobs_cache_hits_total"] == s["cache_hits"], (vals, s)
assert vals["hfs_jobs_deduped_total"] == s["deduped"], (vals, s)
assert vals["hfs_job_queue_wait_ms_count"] == s["executed"], \
    f"queue-wait observed once per executed job: {vals}"
assert vals["hfs_job_exec_wall_ms_count"] == s["executed"], \
    f"exec-wall observed once per executed job: {vals}"
assert vals["hfs_queue_depth"] == 0 and vals["hfs_jobs_in_flight"] == 0, vals
assert vals.get("hfs_worker_restarts_total", 0) >= 1, \
    f"the kill -9 before the fresh sweep must register as a restart: {vals}"
EOF
else
    echo "$STATS" | grep -q '"deduped": 0' && { echo "no dedup observed"; exit 1; }
    echo "$METRICS" | grep -q '^hfs_jobs_submitted_total ' \
        || { echo "metrics exposition missing counters"; exit 1; }
fi

# Clean shutdown: drain acknowledged, server exits zero, and its log is
# structured: every line valid JSON with the expected fields.
HFS_SOCK="$SOCK" target/release/hfs-client shutdown >/dev/null
wait "$SERVE_PID" || { echo "hfs-serve exited non-zero"; exit 1; }
# Drain must reap every child and unlink the socket — no orphans.
if pgrep -f 'hfs-serve --worker' >/dev/null 2>&1; then
    pgrep -af 'hfs-serve --worker' || true
    echo "orphaned --worker processes survived the drain"; exit 1
fi
[ ! -S "$SOCK" ] || { echo "socket not unlinked after drain"; exit 1; }
SERVE_PID=
[ -s "$SERVE_TMP/serve.log" ] || { echo "server wrote no log lines"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SERVE_TMP/serve.log" <<'EOF'
import json, sys
seqs = []
events = set()
for line in open(sys.argv[1]):
    rec = json.loads(line)
    assert {"seq", "ts_ms", "level", "component", "event"} <= rec.keys(), rec
    seqs.append(rec["seq"])
    events.add(rec["event"])
assert seqs == sorted(seqs) and len(seqs) == len(set(seqs)), "seq not strictly increasing"
assert {"listening", "connection_accepted", "drained"} <= events, events
EOF
fi

echo "==> sweepbench --quick --check (sweep-scale throughput gate vs committed baseline)"
# Warm batched throughput must stay within 10% of its committed
# BENCH_sweep.json row (one full-scale re-measure damps noise).
cargo run --release -p hfs-bench --bin sweepbench -- --quick --check
SWEEP_JSON=target/BENCH_sweep_quick.json
[ -s "$SWEEP_JSON" ] || { echo "sweepbench wrote no $SWEEP_JSON"; exit 1; }
if command -v python3 >/dev/null 2>&1; then
    python3 - "$SWEEP_JSON" <<'EOF'
import json, sys
quick = json.load(open(sys.argv[1]))
assert quick["schema"] == "sweepbench-v1", "malformed quick sweep bench"
rows = {(p["path"], p["phase"]) for p in quick["points"]}
assert rows == {(p, f) for p in ("baseline", "batched") for f in ("cold", "warm")}, rows
for p in quick["points"]:
    assert p["jobs"] > 0 and p["jobs_per_sec"] > 0, f"degenerate point {p}"
assert quick["warm_speedup"] >= 3.0, \
    f"warm batched path must hold >=3x over the legacy protocol: {quick['warm_speedup']}"
assert quick["host"]["nproc"] >= 1 and quick["host"]["timestamp"], quick["host"]
EOF
else
    grep -q '"schema": "sweepbench-v1"' "$SWEEP_JSON" || { echo "malformed $SWEEP_JSON"; exit 1; }
fi

echo "==> ci OK"

#!/usr/bin/env bash
# Pre-PR gate: run this before every push.
#
#   scripts/ci.sh          # fmt + clippy + build + tier-1 tests (quick)
#   HFS_FULL=1 scripts/ci.sh   # same, but without the quick iteration cap
#
# The workspace is std-only, so everything here works with no network or
# registry access.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1)"
if [ -n "${HFS_FULL:-}" ]; then
    cargo test --workspace -q
else
    HFS_QUICK=1 cargo test --workspace -q
fi

echo "==> trace smoke (golden cycles + Chrome trace validity)"
cargo run --release -p hfs-bench --bin trace_smoke

echo "==> ci OK"
